//! Hierarchical transit-stub topologies (the GT-ITM model).
//!
//! The paper's evaluation runs on topologies "generated through the GT-ITM
//! network topology generator according to the hierarchical transit-stub
//! model" (Zegura, Calvert & Bhattacharjee, INFOCOM '96). GT-ITM is an
//! external C tool, so this module re-implements the model:
//!
//! 1. A top-level connected random graph of *transit domains*.
//! 2. Each transit domain is a connected Waxman graph of transit nodes.
//! 3. Each transit node hosts several *stub domains*, each a small
//!    connected Waxman graph attached to its transit node by one edge.
//!
//! Edge latencies come from per-tier latency bands: intra-stub links are
//! fastest, inter-transit-domain links slowest, which produces the strongly
//! clustered RTT structure that landmark clustering exploits.

use crate::graph::{Graph, NodeId};
use crate::waxman::WaxmanConfig;
use rand::Rng;
use std::fmt;

/// An inclusive latency range in milliseconds for one tier of links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBand {
    /// Lower bound in milliseconds.
    pub min_ms: f64,
    /// Upper bound in milliseconds.
    pub max_ms: f64,
}

impl LatencyBand {
    /// Creates a band after validating `0 < min_ms <= max_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite, non-positive, or inverted.
    pub fn new(min_ms: f64, max_ms: f64) -> Self {
        assert!(
            min_ms.is_finite() && max_ms.is_finite() && min_ms > 0.0 && min_ms <= max_ms,
            "invalid latency band [{min_ms}, {max_ms}]"
        );
        LatencyBand { min_ms, max_ms }
    }

    /// Samples a latency uniformly from the band.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.min_ms == self.max_ms {
            self.min_ms
        } else {
            rng.gen_range(self.min_ms..=self.max_ms)
        }
    }

    /// Returns `true` if `ms` lies within the band.
    pub fn contains(&self, ms: f64) -> bool {
        ms >= self.min_ms && ms <= self.max_ms
    }
}

/// Role of a node within the transit-stub hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A backbone node inside the given transit domain.
    Transit {
        /// Index of the transit domain, `0..transit_domains`.
        domain: usize,
    },
    /// An edge node inside the given stub domain.
    Stub {
        /// Global index of the stub domain.
        domain: usize,
    },
}

impl NodeKind {
    /// Returns `true` for transit (backbone) nodes.
    pub fn is_transit(&self) -> bool {
        matches!(self, NodeKind::Transit { .. })
    }

    /// Returns `true` for stub (edge) nodes.
    pub fn is_stub(&self) -> bool {
        matches!(self, NodeKind::Stub { .. })
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Transit { domain } => write!(f, "transit[{domain}]"),
            NodeKind::Stub { domain } => write!(f, "stub[{domain}]"),
        }
    }
}

/// One stub domain: its nodes and where it attaches to the backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct StubDomain {
    /// Global stub-domain index.
    pub id: usize,
    /// The transit node this stub domain hangs off.
    pub attachment: NodeId,
    /// All nodes of the stub domain.
    pub nodes: Vec<NodeId>,
}

/// Configuration of the transit-stub generator.
///
/// The defaults produce the mid-size Internet-like topologies used
/// throughout the reproduction: 4 transit domains of 4 transit nodes, 3
/// stub domains of 8 nodes per transit node, so 4·4·(1 + 3·8) = 400 nodes
/// of which 384 are stub nodes.
///
/// # Examples
///
/// ```
/// use ecg_topology::TransitStubConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let cfg = TransitStubConfig::default();
/// let topo = cfg.generate(&mut StdRng::seed_from_u64(1));
/// assert!(topo.graph().is_connected());
/// assert_eq!(topo.stub_nodes().len(), 384);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    transit_domains: usize,
    transit_nodes_per_domain: usize,
    stub_domains_per_transit_node: usize,
    stub_nodes_per_domain: usize,
    inter_transit: LatencyBand,
    intra_transit: LatencyBand,
    transit_stub: LatencyBand,
    intra_stub: LatencyBand,
    domain_edge_alpha: f64,
    waxman_alpha: f64,
    waxman_beta: f64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_domains: 4,
            transit_nodes_per_domain: 4,
            stub_domains_per_transit_node: 3,
            stub_nodes_per_domain: 8,
            inter_transit: LatencyBand::new(20.0, 80.0),
            intra_transit: LatencyBand::new(5.0, 25.0),
            transit_stub: LatencyBand::new(2.0, 10.0),
            intra_stub: LatencyBand::new(0.5, 3.0),
            domain_edge_alpha: 0.7,
            waxman_alpha: 0.6,
            waxman_beta: 0.4,
        }
    }
}

impl TransitStubConfig {
    /// Creates the default configuration; see the type-level docs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of transit domains.
    pub fn transit_domains(mut self, n: usize) -> Self {
        self.transit_domains = n;
        self
    }

    /// Sets the number of transit nodes per transit domain.
    pub fn transit_nodes_per_domain(mut self, n: usize) -> Self {
        self.transit_nodes_per_domain = n;
        self
    }

    /// Sets the number of stub domains attached to each transit node.
    pub fn stub_domains_per_transit_node(mut self, n: usize) -> Self {
        self.stub_domains_per_transit_node = n;
        self
    }

    /// Sets the number of nodes in each stub domain.
    pub fn stub_nodes_per_domain(mut self, n: usize) -> Self {
        self.stub_nodes_per_domain = n;
        self
    }

    /// Sets the latency band for links between transit domains.
    pub fn inter_transit(mut self, band: LatencyBand) -> Self {
        self.inter_transit = band;
        self
    }

    /// Sets the latency band for links inside a transit domain.
    pub fn intra_transit(mut self, band: LatencyBand) -> Self {
        self.intra_transit = band;
        self
    }

    /// Sets the latency band for stub-domain attachment links.
    pub fn transit_stub(mut self, band: LatencyBand) -> Self {
        self.transit_stub = band;
        self
    }

    /// Sets the latency band for links inside a stub domain.
    pub fn intra_stub(mut self, band: LatencyBand) -> Self {
        self.intra_stub = band;
        self
    }

    /// Returns a configuration guaranteed to contain at least
    /// `cache_count` stub nodes (plus the backbone), scaling the number of
    /// stub domains while keeping the backbone shape fixed.
    ///
    /// This is the sizing helper the experiment harness uses to build
    /// networks of 100–500 edge caches.
    pub fn for_caches(cache_count: usize) -> Self {
        let cfg = TransitStubConfig::default();
        let attach_points = cfg.transit_domains * cfg.transit_nodes_per_domain;
        let per_stub = cfg.stub_nodes_per_domain;
        // Total stub nodes = attach_points * stubs_per_tn * per_stub.
        let needed_domains = cache_count.div_ceil(per_stub);
        let stubs_per_tn = needed_domains.div_ceil(attach_points).max(1);
        cfg.stub_domains_per_transit_node(stubs_per_tn)
    }

    /// Total number of nodes the configuration will generate.
    pub fn total_nodes(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        transit + transit * self.stub_domains_per_transit_node * self.stub_nodes_per_domain
    }

    /// Total number of stub nodes the configuration will generate.
    pub fn total_stub_nodes(&self) -> usize {
        self.transit_domains
            * self.transit_nodes_per_domain
            * self.stub_domains_per_transit_node
            * self.stub_nodes_per_domain
    }

    /// Generates a transit-stub topology.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> TransitStubTopology {
        assert!(self.transit_domains > 0, "need at least one transit domain");
        assert!(
            self.transit_nodes_per_domain > 0,
            "need at least one transit node per domain"
        );
        assert!(
            self.stub_domains_per_transit_node > 0,
            "need at least one stub domain per transit node"
        );
        assert!(
            self.stub_nodes_per_domain > 0,
            "need at least one node per stub domain"
        );

        let mut graph = Graph::new();
        let mut kinds = Vec::new();

        // 1. Transit domains: an intra-domain Waxman graph each.
        let mut transit_nodes_by_domain: Vec<Vec<NodeId>> = Vec::new();
        for domain in 0..self.transit_domains {
            let ids = self.splice_waxman(
                &mut graph,
                rng,
                self.transit_nodes_per_domain,
                self.intra_transit,
            );
            for _ in &ids {
                kinds.push(NodeKind::Transit { domain });
            }
            transit_nodes_by_domain.push(ids);
        }

        // 2. Connect transit domains into a connected top-level graph.
        self.connect_domains(&mut graph, rng, &transit_nodes_by_domain);

        // 3. Stub domains hanging off every transit node.
        let mut stub_domains = Vec::new();
        for domain_nodes in &transit_nodes_by_domain {
            for &tn in domain_nodes {
                for _ in 0..self.stub_domains_per_transit_node {
                    let stub_id = stub_domains.len();
                    let ids = self.splice_waxman(
                        &mut graph,
                        rng,
                        self.stub_nodes_per_domain,
                        self.intra_stub,
                    );
                    for _ in &ids {
                        kinds.push(NodeKind::Stub { domain: stub_id });
                    }
                    let gateway = ids[rng.gen_range(0..ids.len())];
                    graph.add_edge(tn, gateway, self.transit_stub.sample(rng));
                    stub_domains.push(StubDomain {
                        id: stub_id,
                        attachment: tn,
                        nodes: ids,
                    });
                }
            }
        }

        debug_assert_eq!(graph.node_count(), kinds.len());
        TransitStubTopology {
            graph,
            kinds,
            transit_nodes: transit_nodes_by_domain.into_iter().flatten().collect(),
            stub_domains,
        }
    }

    /// Generates a Waxman subgraph whose edges fall in `band` and splices
    /// it into `graph`, returning the new global node ids.
    fn splice_waxman<R: Rng + ?Sized>(
        &self,
        graph: &mut Graph,
        rng: &mut R,
        nodes: usize,
        band: LatencyBand,
    ) -> Vec<NodeId> {
        let (sub, points) = WaxmanConfig::new(nodes)
            .alpha(self.waxman_alpha)
            .beta(self.waxman_beta)
            .generate(rng);
        let ids: Vec<NodeId> = (0..nodes).map(|_| graph.add_node()).collect();
        for e in sub.edges() {
            // Map the unit-square distance onto the band so closer nodes
            // get proportionally faster links.
            let d = points[e.a.index()].distance(&points[e.b.index()]);
            let frac = (d / 2f64.sqrt()).clamp(0.0, 1.0);
            let latency = band.min_ms + frac * (band.max_ms - band.min_ms);
            graph.add_edge(ids[e.a.index()], ids[e.b.index()], latency);
        }
        ids
    }

    /// Adds inter-domain links between random transit nodes so the domain
    /// graph is connected plus some redundant shortcuts.
    fn connect_domains<R: Rng + ?Sized>(
        &self,
        graph: &mut Graph,
        rng: &mut R,
        domains: &[Vec<NodeId>],
    ) {
        let t = domains.len();
        if t <= 1 {
            return;
        }
        // Spanning chain in random order guarantees connectivity.
        let mut order: Vec<usize> = (0..t).collect();
        for i in (1..t).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let link = |graph: &mut Graph, rng: &mut R, a: usize, b: usize| {
            let u = domains[a][rng.gen_range(0..domains[a].len())];
            let v = domains[b][rng.gen_range(0..domains[b].len())];
            if !graph.has_edge(u, v) {
                graph.add_edge(u, v, self.inter_transit.sample(rng));
            }
        };
        for w in order.windows(2) {
            link(graph, rng, w[0], w[1]);
        }
        // Redundant shortcuts with probability `domain_edge_alpha` per
        // remaining domain pair, mimicking GT-ITM's denser top level.
        for a in 0..t {
            for b in (a + 1)..t {
                if rng.gen::<f64>() < self.domain_edge_alpha {
                    link(graph, rng, a, b);
                }
            }
        }
    }
}

/// A generated transit-stub topology: graph plus hierarchy metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubTopology {
    graph: Graph,
    kinds: Vec<NodeKind>,
    transit_nodes: Vec<NodeId>,
    stub_domains: Vec<StubDomain>,
}

impl TransitStubTopology {
    /// The underlying latency graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Role of `node` within the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// All transit (backbone) nodes.
    pub fn transit_nodes(&self) -> &[NodeId] {
        &self.transit_nodes
    }

    /// All stub domains in generation order.
    pub fn stub_domains(&self) -> &[StubDomain] {
        &self.stub_domains
    }

    /// All stub nodes across all stub domains, in generation order.
    pub fn stub_nodes(&self) -> Vec<NodeId> {
        self.stub_domains
            .iter()
            .flat_map(|d| d.nodes.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> TransitStubConfig {
        TransitStubConfig::default()
            .transit_domains(2)
            .transit_nodes_per_domain(3)
            .stub_domains_per_transit_node(2)
            .stub_nodes_per_domain(4)
    }

    #[test]
    fn node_counts_match_configuration() {
        let cfg = small();
        assert_eq!(cfg.total_nodes(), 2 * 3 + 2 * 3 * 2 * 4);
        let topo = cfg.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(topo.graph().node_count(), cfg.total_nodes());
        assert_eq!(topo.stub_nodes().len(), cfg.total_stub_nodes());
        assert_eq!(topo.transit_nodes().len(), 6);
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..10 {
            let topo = small().generate(&mut StdRng::seed_from_u64(seed));
            assert!(topo.graph().is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn kinds_partition_nodes() {
        let topo = small().generate(&mut StdRng::seed_from_u64(2));
        let transit = topo
            .graph()
            .nodes()
            .filter(|&n| topo.kind(n).is_transit())
            .count();
        let stub = topo
            .graph()
            .nodes()
            .filter(|&n| topo.kind(n).is_stub())
            .count();
        assert_eq!(transit, 6);
        assert_eq!(stub, 48);
        assert_eq!(transit + stub, topo.graph().node_count());
    }

    #[test]
    fn stub_domains_attach_to_their_transit_node() {
        let topo = small().generate(&mut StdRng::seed_from_u64(3));
        for sd in topo.stub_domains() {
            assert!(topo.kind(sd.attachment).is_transit());
            let attached = sd
                .nodes
                .iter()
                .any(|&n| topo.graph().has_edge(n, sd.attachment));
            assert!(attached, "stub domain {} not attached", sd.id);
            for &n in &sd.nodes {
                assert_eq!(topo.kind(n), NodeKind::Stub { domain: sd.id });
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small().generate(&mut StdRng::seed_from_u64(11));
        let b = small().generate(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn for_caches_provides_enough_stub_nodes() {
        for want in [50, 100, 237, 500, 1000] {
            let cfg = TransitStubConfig::for_caches(want);
            assert!(
                cfg.total_stub_nodes() >= want,
                "requested {want}, got {}",
                cfg.total_stub_nodes()
            );
        }
    }

    #[test]
    fn latency_band_sampling_stays_in_range() {
        let band = LatencyBand::new(3.0, 9.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let v = band.sample(&mut rng);
            assert!(band.contains(v));
        }
    }

    #[test]
    fn degenerate_band_samples_constant() {
        let band = LatencyBand::new(4.0, 4.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(band.sample(&mut rng), 4.0);
    }

    #[test]
    #[should_panic(expected = "invalid latency band")]
    fn inverted_band_panics() {
        let _ = LatencyBand::new(5.0, 1.0);
    }

    #[test]
    fn single_domain_topology_works() {
        let topo = TransitStubConfig::default()
            .transit_domains(1)
            .transit_nodes_per_domain(2)
            .stub_domains_per_transit_node(1)
            .stub_nodes_per_domain(3)
            .generate(&mut StdRng::seed_from_u64(8));
        assert!(topo.graph().is_connected());
        assert_eq!(topo.graph().node_count(), 2 + 2 * 3);
    }

    #[test]
    fn node_kind_display() {
        assert_eq!(NodeKind::Transit { domain: 1 }.to_string(), "transit[1]");
        assert_eq!(NodeKind::Stub { domain: 7 }.to_string(), "stub[7]");
    }
}
