//! Shortest-path latency computations.
//!
//! Edge weights are one-way link latencies in milliseconds; shortest paths
//! therefore give one-way propagation delays, and the round-trip time
//! between two nodes is twice the shortest-path distance (paths are
//! symmetric in an undirected graph). [`all_pairs_rtt`] builds the full
//! [`RttMatrix`] this way, fanning the
//! single-source runs out across scoped `std::thread` workers.

use crate::graph::{Graph, NodeId};
use crate::rtt::RttMatrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate entry in Dijkstra's priority queue.
///
/// Ordered so the smallest distance pops first from a max-heap. Distances
/// are finite non-NaN by construction (edge latencies are validated).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist: f64,
    node: NodeId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the nearest node first.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are never NaN")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest one-way latencies from `source`, in ms.
///
/// Unreachable nodes get `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use ecg_topology::{Graph, NodeId, shortest_path::dijkstra};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), 2.0);
/// g.add_edge(NodeId(1), NodeId(2), 3.0);
/// let d = dijkstra(&g, NodeId(0));
/// assert_eq!(d[2], 5.0);
/// ```
pub fn dijkstra(graph: &Graph, source: NodeId) -> Vec<f64> {
    let n = graph.node_count();
    assert!(source.index() < n, "source {source} out of range");
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Candidate {
        dist: 0.0,
        node: source,
    });
    while let Some(Candidate { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for nb in graph.neighbors(u) {
            let nd = d + nb.latency_ms;
            if nd < dist[nb.node.index()] {
                dist[nb.node.index()] = nd;
                heap.push(Candidate {
                    dist: nd,
                    node: nb.node,
                });
            }
        }
    }
    dist
}

/// Shortest one-way latencies from every node in `sources`.
///
/// Runs the single-source computations on [`ecg_par`] workers, at most
/// `threads` of them. Rows are returned in `sources` order; each row is
/// an independent Dijkstra run, so the result is identical at any
/// thread count.
///
/// # Panics
///
/// Panics if `threads == 0` or any source is out of range.
pub fn multi_source_latencies(graph: &Graph, sources: &[NodeId], threads: usize) -> Vec<Vec<f64>> {
    assert!(threads > 0, "need at least one thread");
    for &s in sources {
        assert!(s.index() < graph.node_count(), "source {s} out of range");
    }
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); sources.len()];
    let chunk = sources.len().div_ceil(threads).max(1);
    let work: Vec<(&mut [Vec<f64>], &[NodeId])> =
        rows.chunks_mut(chunk).zip(sources.chunks(chunk)).collect();
    ecg_par::par_map_with(work, threads, |(row_chunk, src_chunk)| {
        for (row, &src) in row_chunk.iter_mut().zip(src_chunk) {
            *row = dijkstra(graph, src);
        }
    });
    rows
}

/// Builds the all-pairs round-trip-time matrix of `graph`.
///
/// `rtt(i, j) = 2 × shortest one-way latency(i, j)`. Uses
/// [`multi_source_latencies`] internally with the thread count resolved
/// by [`ecg_par::threads_for`] (honoring the `ECG_THREADS` override).
///
/// # Panics
///
/// Panics if the graph is disconnected (an RTT would be infinite).
pub fn all_pairs_rtt(graph: &Graph) -> RttMatrix {
    let n = graph.node_count();
    let sources: Vec<NodeId> = (0..n).map(NodeId).collect();
    let rows = multi_source_latencies(graph, &sources, ecg_par::threads_for(n));
    RttMatrix::from_rows_one_way(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -2- 1 -2- 3, and 0 -1- 2 -1- 3: the 0→3 shortest path is via 2.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        g.add_edge(NodeId(1), NodeId(3), 2.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        g
    }

    #[test]
    fn dijkstra_finds_cheaper_detour() {
        let d = dijkstra(&diamond(), NodeId(0));
        assert_eq!(d, vec![0.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn dijkstra_marks_unreachable_as_infinite() {
        let mut g = diamond();
        let iso = g.add_node();
        let d = dijkstra(&g, NodeId(0));
        assert_eq!(d[iso.index()], f64::INFINITY);
    }

    #[test]
    fn multi_source_matches_single_source() {
        let g = diamond();
        let sources = [NodeId(0), NodeId(2), NodeId(3)];
        for threads in [1, 2, 7] {
            let rows = multi_source_latencies(&g, &sources, threads);
            for (row, &s) in rows.iter().zip(&sources) {
                assert_eq!(row, &dijkstra(&g, s), "threads={threads}");
            }
        }
    }

    #[test]
    fn all_pairs_rtt_doubles_one_way() {
        let m = all_pairs_rtt(&diamond());
        assert_eq!(m.get(0, 3), 4.0); // one-way 2.0 via node 2
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), m.get(2, 1));
    }

    #[test]
    fn rtt_satisfies_triangle_inequality() {
        use rand::{rngs::StdRng, SeedableRng};
        let topo = crate::TransitStubConfig::default()
            .transit_domains(2)
            .transit_nodes_per_domain(2)
            .stub_domains_per_transit_node(2)
            .stub_nodes_per_domain(3)
            .generate(&mut StdRng::seed_from_u64(4));
        let m = all_pairs_rtt(topo.graph());
        let n = m.len();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(
                        m.get(i, j) <= m.get(i, k) + m.get(k, j) + 1e-9,
                        "triangle violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dijkstra_rejects_bad_source() {
        let _ = dijkstra(&diamond(), NodeId(99));
    }
}
