//! Text serialization for RTT matrices.
//!
//! A minimal line-oriented format so measured or generated matrices can
//! be saved, diffed, and fed back into the tools:
//!
//! ```text
//! # optional comments
//! rtt 4            # header: dimension
//! 12.0             # row 1: rtt(1, 0)
//! 8.0 4.0          # row 2: rtt(2, 0) rtt(2, 1)
//! 12.0 17.0 14.4   # row 3: ...
//! ```
//!
//! Only the strict lower triangle is stored (the matrix is symmetric
//! with a zero diagonal by construction).

use crate::rtt::RttMatrix;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Error from [`read_rtt_matrix`].
#[derive(Debug)]
pub enum RttIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed header or row; carries the 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for RttIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RttIoError::Io(e) => write!(f, "rtt matrix i/o error: {e}"),
            RttIoError::Parse { line, message } => {
                write!(f, "malformed rtt matrix at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RttIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RttIoError::Io(e) => Some(e),
            RttIoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for RttIoError {
    fn from(e: io::Error) -> Self {
        RttIoError::Io(e)
    }
}

/// Writes `matrix` in the text format above.
///
/// Pass `&mut writer` to keep ownership of the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_rtt_matrix<W: Write>(mut writer: W, matrix: &RttMatrix) -> io::Result<()> {
    writeln!(writer, "rtt {}", matrix.len())?;
    for i in 1..matrix.len() {
        let row: Vec<String> = (0..i).map(|j| format!("{}", matrix.get(i, j))).collect();
        writeln!(writer, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Reads a matrix written by [`write_rtt_matrix`].
///
/// Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`RttIoError::Parse`] on format violations (bad header,
/// wrong row arity, non-numeric or negative values) and
/// [`RttIoError::Io`] on reader failure.
pub fn read_rtt_matrix<R: Read>(reader: R) -> Result<RttMatrix, RttIoError> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim().to_string();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        lines.push((idx + 1, trimmed));
    }
    let Some((header_line, header)) = lines.first() else {
        return Err(RttIoError::Parse {
            line: 1,
            message: "empty input".into(),
        });
    };
    let n: usize = header
        .strip_prefix("rtt ")
        .and_then(|rest| rest.trim().parse().ok())
        .ok_or_else(|| RttIoError::Parse {
            line: *header_line,
            message: format!("expected `rtt <n>` header, got {header:?}"),
        })?;
    let rows = &lines[1..];
    if rows.len() != n.saturating_sub(1) {
        return Err(RttIoError::Parse {
            line: rows.last().map(|(l, _)| *l).unwrap_or(*header_line),
            message: format!(
                "expected {} data rows, got {}",
                n.saturating_sub(1),
                rows.len()
            ),
        });
    }
    let mut matrix = RttMatrix::zeros(n);
    for (row_idx, (line_no, text)) in rows.iter().enumerate() {
        let i = row_idx + 1;
        let values: Vec<&str> = text.split_ascii_whitespace().collect();
        if values.len() != i {
            return Err(RttIoError::Parse {
                line: *line_no,
                message: format!("row {i} must have {i} values, got {}", values.len()),
            });
        }
        for (j, v) in values.iter().enumerate() {
            let rtt: f64 = v.parse().map_err(|_| RttIoError::Parse {
                line: *line_no,
                message: format!("bad value {v:?}"),
            })?;
            if !rtt.is_finite() || rtt < 0.0 {
                return Err(RttIoError::Parse {
                    line: *line_no,
                    message: format!("rtt must be finite and non-negative, got {rtt}"),
                });
            }
            matrix.set(i, j, rtt);
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_figure1;

    #[test]
    fn round_trip_preserves_matrix() {
        let m = paper_figure1();
        let mut buf = Vec::new();
        write_rtt_matrix(&mut buf, &m).unwrap();
        let back = read_rtt_matrix(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# measured 2026-07-06\nrtt 3\n\n5.0\n# middle\n6.0 7.0\n";
        let m = read_rtt_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(2, 1), 7.0);
    }

    #[test]
    fn single_node_matrix() {
        let m = RttMatrix::zeros(1);
        let mut buf = Vec::new();
        write_rtt_matrix(&mut buf, &m).unwrap();
        let back = read_rtt_matrix(&buf[..]).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, expect_line) in [
            ("nonsense 3\n1.0\n", 1usize),
            ("rtt 3\n1.0\n2.0 x\n", 3),
            ("rtt 3\n1.0\n2.0\n", 3),      // wrong arity in row 2
            ("rtt 3\n1.0\n-2.0 3.0\n", 3), // negative
            ("rtt 4\n1.0\n2.0 3.0\n", 3),  // missing row
        ] {
            match read_rtt_matrix(text.as_bytes()) {
                Err(RttIoError::Parse { line, .. }) => {
                    assert_eq!(line, expect_line, "input {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            read_rtt_matrix("".as_bytes()),
            Err(RttIoError::Parse { .. })
        ));
    }

    #[test]
    fn display_includes_context() {
        let err = RttIoError::Parse {
            line: 7,
            message: "boom".into(),
        };
        let text = err.to_string();
        assert!(text.contains('7') && text.contains("boom"));
    }
}
