//! Undirected weighted graphs with millisecond edge latencies.
//!
//! [`Graph`] is the base representation every topology generator in this
//! crate produces: an adjacency-list graph whose edge weights are one-way
//! link latencies in milliseconds. Round-trip times between arbitrary node
//! pairs are derived from shortest paths (see
//! [`crate::shortest_path`]).

use std::fmt;

/// Identifier of a node inside a [`Graph`].
///
/// `NodeId` is a plain index newtype: node ids are dense and start at zero,
/// so they double as vector indices throughout the crate.
///
/// # Examples
///
/// ```
/// use ecg_topology::NodeId;
///
/// let id = NodeId(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the node id as a dense vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// An undirected edge with a one-way latency in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way link latency in milliseconds. Strictly positive and finite.
    pub latency_ms: f64,
}

/// Adjacency entry: a neighbor and the latency of the connecting link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The adjacent node.
    pub node: NodeId,
    /// One-way link latency in milliseconds.
    pub latency_ms: f64,
}

/// Error returned when an edge with an invalid latency or endpoint is added.
///
/// Produced by [`Graph::try_add_edge`].
#[derive(Debug, Clone, PartialEq)]
pub enum AddEdgeError {
    /// An endpoint index is outside `0..node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// The latency was not a strictly positive finite number.
    InvalidLatency(f64),
    /// Both endpoints are the same node.
    SelfLoop(NodeId),
}

impl fmt::Display for AddEdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddEdgeError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            AddEdgeError::InvalidLatency(l) => {
                write!(f, "edge latency must be finite and positive, got {l}")
            }
            AddEdgeError::SelfLoop(node) => write!(f, "self loop on node {node}"),
        }
    }
}

impl std::error::Error for AddEdgeError {}

/// An undirected graph with latency-weighted edges.
///
/// Nodes are dense indices `0..node_count`. Edges are stored in both
/// adjacency lists, so `neighbors(a)` and `neighbors(b)` each see the link.
/// Parallel edges are permitted by the representation but never produced by
/// the generators in this crate; shortest-path routines simply take the
/// cheaper edge.
///
/// # Examples
///
/// ```
/// use ecg_topology::{Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), 5.0);
/// g.add_edge(NodeId(1), NodeId(2), 7.5);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(NodeId(1)), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    adjacency: Vec<Vec<Neighbor>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph with no nodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() - 1)
    }

    /// Adds an undirected edge between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `a == b`, or if
    /// `latency_ms` is not strictly positive and finite. Use
    /// [`Graph::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, latency_ms: f64) {
        self.try_add_edge(a, b, latency_ms)
            .unwrap_or_else(|e| panic!("add_edge: {e}"));
    }

    /// Adds an undirected edge, validating endpoints and latency.
    ///
    /// # Errors
    ///
    /// Returns [`AddEdgeError`] if an endpoint is out of range, the edge is
    /// a self loop, or the latency is not strictly positive and finite.
    pub fn try_add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency_ms: f64,
    ) -> Result<(), AddEdgeError> {
        let n = self.node_count();
        for node in [a, b] {
            if node.index() >= n {
                return Err(AddEdgeError::NodeOutOfRange {
                    node,
                    node_count: n,
                });
            }
        }
        if a == b {
            return Err(AddEdgeError::SelfLoop(a));
        }
        if !latency_ms.is_finite() || latency_ms <= 0.0 {
            return Err(AddEdgeError::InvalidLatency(latency_ms));
        }
        self.adjacency[a.index()].push(Neighbor {
            node: b,
            latency_ms,
        });
        self.adjacency[b.index()].push(Neighbor {
            node: a,
            latency_ms,
        });
        self.edge_count += 1;
        Ok(())
    }

    /// Returns `true` if an edge between `a` and `b` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency
            .get(a.index())
            .is_some_and(|adj| adj.iter().any(|n| n.node == b))
    }

    /// Neighbors of `node` with link latencies.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[Neighbor] {
        &self.adjacency[node.index()]
    }

    /// Degree (number of incident edges) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterates over every undirected edge exactly once (with `a < b`).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, adj)| {
            adj.iter()
                .filter(move |n| i < n.node.index())
                .map(move |n| Edge {
                    a: NodeId(i),
                    b: n.node,
                    latency_ms: n.latency_ms,
                })
        })
    }

    /// Returns `true` if every node is reachable from node 0.
    ///
    /// The empty graph is considered connected.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for nb in self.neighbors(u) {
                if !seen[nb.node.index()] {
                    seen[nb.node.index()] = true;
                    visited += 1;
                    stack.push(nb.node);
                }
            }
        }
        visited == n
    }

    /// Returns the connected components as lists of node ids.
    ///
    /// Components are returned in order of their smallest node id, and the
    /// node ids within each component are sorted ascending.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![NodeId(start)];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                comp.push(u);
                for nb in self.neighbors(u) {
                    if !seen[nb.node.index()] {
                        seen[nb.node.index()] = true;
                        stack.push(nb.node);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Sum of all edge latencies in milliseconds.
    pub fn total_latency_ms(&self) -> f64 {
        self.edges().map(|e| e.latency_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i), 1.0);
        }
        g
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new().is_connected());
        assert!(Graph::new().is_empty());
    }

    #[test]
    fn single_node_is_connected() {
        assert!(Graph::with_nodes(1).is_connected());
    }

    #[test]
    fn add_node_returns_dense_ids() {
        let mut g = Graph::new();
        assert_eq!(g.add_node(), NodeId(0));
        assert_eq!(g.add_node(), NodeId(1));
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn edges_are_bidirectional() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 3.0);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = path_graph(4);
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert!(e.a < e.b);
        }
    }

    #[test]
    fn try_add_edge_rejects_out_of_range() {
        let mut g = Graph::with_nodes(2);
        let err = g.try_add_edge(NodeId(0), NodeId(5), 1.0).unwrap_err();
        assert!(matches!(err, AddEdgeError::NodeOutOfRange { .. }));
    }

    #[test]
    fn try_add_edge_rejects_self_loop() {
        let mut g = Graph::with_nodes(2);
        let err = g.try_add_edge(NodeId(1), NodeId(1), 1.0).unwrap_err();
        assert_eq!(err, AddEdgeError::SelfLoop(NodeId(1)));
    }

    #[test]
    fn try_add_edge_rejects_bad_latency() {
        let mut g = Graph::with_nodes(2);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = g.try_add_edge(NodeId(0), NodeId(1), bad).unwrap_err();
            assert!(matches!(err, AddEdgeError::InvalidLatency(_)));
        }
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn path_graph_is_connected() {
        assert!(path_graph(10).is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = path_graph(3);
        g.add_node();
        assert!(!g.is_connected());
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(comps[1], vec![NodeId(3)]);
    }

    #[test]
    fn total_latency_sums_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.5);
        g.add_edge(NodeId(1), NodeId(2), 2.5);
        assert!((g.total_latency_ms() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "n7");
        let err = AddEdgeError::InvalidLatency(-2.0);
        assert!(err.to_string().contains("-2"));
    }
}
