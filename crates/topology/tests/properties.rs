//! Property-based tests for the topology substrate.

use ecg_topology::shortest_path::{all_pairs_rtt, dijkstra, multi_source_latencies};
use ecg_topology::{
    EdgeNetwork, Graph, NodeId, OriginPlacement, RttMatrix, TransitStubConfig, WaxmanConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    // A random spanning tree plus random extra edges: always connected.
    (2usize..30, any::<u64>()).prop_map(|(n, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            g.add_edge(NodeId(i), NodeId(parent), rng.gen_range(0.1..50.0));
        }
        let extras = rng.gen_range(0..n);
        for _ in 0..extras {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !g.has_edge(NodeId(a), NodeId(b)) {
                g.add_edge(NodeId(a), NodeId(b), rng.gen_range(0.1..50.0));
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn dijkstra_distances_are_metric(g in arb_connected_graph()) {
        let n = g.node_count();
        let rows: Vec<Vec<f64>> = (0..n).map(|i| dijkstra(&g, NodeId(i))).collect();
        // Symmetry (undirected graph) and identity.
        for (i, row) in rows.iter().enumerate() {
            prop_assert!(row[i].abs() < 1e-12);
            for (j, &d) in row.iter().enumerate() {
                prop_assert!((d - rows[j][i]).abs() < 1e-9);
            }
        }
        // Triangle inequality.
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(rows[i][j] <= rows[i][k] + rows[k][j] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn dijkstra_never_exceeds_direct_edge(g in arb_connected_graph()) {
        for e in g.edges() {
            let d = dijkstra(&g, e.a);
            prop_assert!(d[e.b.index()] <= e.latency_ms + 1e-12);
        }
    }

    #[test]
    fn multi_source_thread_count_is_irrelevant(g in arb_connected_graph()) {
        let sources: Vec<NodeId> = g.nodes().collect();
        let one = multi_source_latencies(&g, &sources, 1);
        let many = multi_source_latencies(&g, &sources, 4);
        prop_assert_eq!(one, many);
    }

    #[test]
    fn rtt_matrix_submatrix_preserves_entries(
        g in arb_connected_graph(),
        pick_seed in any::<u64>(),
    ) {
        use rand::Rng;
        let m = all_pairs_rtt(&g);
        let mut rng = StdRng::seed_from_u64(pick_seed);
        let k = rng.gen_range(1..=m.len());
        let indices: Vec<usize> = (0..k).map(|_| rng.gen_range(0..m.len())).collect();
        let sub = m.submatrix(&indices);
        for a in 0..k {
            for b in 0..k {
                prop_assert_eq!(sub.get(a, b), m.get(indices[a], indices[b]));
            }
        }
    }

    #[test]
    fn waxman_is_connected_and_sized(n in 1usize..60, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, pts) = WaxmanConfig::new(n).generate(&mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(pts.len(), n);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn transit_stub_structure_holds(
        td in 1usize..4,
        tn in 1usize..4,
        sd in 1usize..3,
        sn in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = TransitStubConfig::default()
            .transit_domains(td)
            .transit_nodes_per_domain(tn)
            .stub_domains_per_transit_node(sd)
            .stub_nodes_per_domain(sn);
        let topo = cfg.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert!(topo.graph().is_connected());
        prop_assert_eq!(topo.graph().node_count(), cfg.total_nodes());
        prop_assert_eq!(topo.stub_nodes().len(), cfg.total_stub_nodes());
    }

    #[test]
    fn placement_indices_are_consistent(seed in any::<u64>(), caches in 1usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        let net = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
            .expect("placement");
        prop_assert_eq!(net.cache_count(), caches);
        // Typed accessors agree with the raw matrix layout.
        let m = net.rtt_matrix();
        for a in net.caches() {
            prop_assert_eq!(net.cache_to_origin(a), m.get(a.index() + 1, 0));
            for b in net.caches() {
                prop_assert_eq!(net.cache_to_cache(a, b), m.get(a.index() + 1, b.index() + 1));
            }
        }
    }

    #[test]
    fn rtt_from_fn_is_symmetric(n in 0usize..20) {
        let m = RttMatrix::from_fn(n, |i, j| (i * 31 + j * 7) as f64 + 1.0);
        for i in 0..n {
            prop_assert_eq!(m.get(i, i), 0.0);
            for j in 0..n {
                prop_assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }
}
