//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The real criterion is a registry dependency this workspace cannot
//! fetch offline, so the bench binaries link against this shim instead.
//! It preserves the API shape the benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`)
//! and reports plain wall-clock statistics: each benchmark body is
//! warmed up once, then timed over `sample_size` samples, and the mean,
//! median, minimum, and maximum per-iteration times are printed. A
//! [`Throughput`] annotation additionally reports real units/second
//! derived from the median sample.
//!
//! Every completed benchmark is also recorded as a [`SampleStats`] on
//! the [`Criterion`] driver, and [`Criterion::json_report`] renders the
//! whole run as machine-readable JSON for tooling (e.g. the
//! `bench_hotpaths` baseline file).
//!
//! No statistical analysis, no HTML reports, no comparison against
//! saved baselines — run times are indicative, not criterion-grade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation; recorded for display only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] times the body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// warm-up call) and records per-iteration nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let _warmup = f();
        self.results_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed();
            std::hint::black_box(&out);
            self.results_ns.push(elapsed.as_nanos() as f64);
        }
    }
}

/// Summary statistics for one benchmark's timed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Full benchmark name (`group/function/parameter`).
    pub name: String,
    /// Number of timed samples (the warm-up call is excluded).
    pub samples: usize,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample in nanoseconds.
    pub max_ns: f64,
    /// Work per iteration, when annotated.
    pub throughput: Option<Throughput>,
}

impl SampleStats {
    /// Computes the statistics over raw per-iteration samples, or `None`
    /// if there are none.
    pub fn from_samples(
        name: impl Into<String>,
        results_ns: &[f64],
        throughput: Option<Throughput>,
    ) -> Option<Self> {
        if results_ns.is_empty() {
            return None;
        }
        let n = results_ns.len();
        let mut sorted = results_ns.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are not NaN"));
        let median_ns = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(SampleStats {
            name: name.into(),
            samples: n,
            mean_ns: results_ns.iter().sum::<f64>() / n as f64,
            median_ns,
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
            throughput,
        })
    }

    /// Units of annotated work per second, based on the median sample;
    /// `None` without a [`Throughput`] annotation.
    pub fn throughput_per_sec(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Elements(n) => n as f64,
            Throughput::Bytes(n) => n as f64,
        };
        Some(units / (self.median_ns / 1e9))
    }

    /// Renders this benchmark as one JSON object (the element format of
    /// [`Criterion::json_report`]).
    pub fn to_json(&self) -> String {
        let (tput, unit) = match (self.throughput, self.throughput_per_sec()) {
            (Some(Throughput::Elements(_)), Some(per_sec)) => {
                (format!("{per_sec:.3}"), "\"elements\"".to_string())
            }
            (Some(Throughput::Bytes(_)), Some(per_sec)) => {
                (format!("{per_sec:.3}"), "\"bytes\"".to_string())
            }
            _ => ("null".to_string(), "null".to_string()),
        };
        format!(
            "{{\"name\":{},\"samples\":{},\"mean_ns\":{:.3},\"median_ns\":{:.3},\
             \"min_ns\":{:.3},\"max_ns\":{:.3},\"throughput_per_sec\":{},\
             \"throughput_unit\":{}}}",
            json_string(&self.name),
            self.samples,
            self.mean_ns,
            self.median_ns,
            self.min_ns,
            self.max_ns,
            tput,
            unit,
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(
    full_name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) -> Option<SampleStats> {
    let mut bencher = Bencher {
        samples,
        results_ns: Vec::new(),
    };
    f(&mut bencher);
    let Some(stats) = SampleStats::from_samples(full_name, &bencher.results_ns, throughput) else {
        println!("{full_name:<40} (no measurements)");
        return None;
    };
    let mut line = format!(
        "{full_name:<40} mean {:>12}  median {:>12}  min {:>12}  max {:>12}",
        human_ns(stats.mean_ns),
        human_ns(stats.median_ns),
        human_ns(stats.min_ns),
        human_ns(stats.max_ns)
    );
    match (stats.throughput, stats.throughput_per_sec()) {
        (Some(Throughput::Elements(_)), Some(per_sec)) => {
            line.push_str(&format!("  ({per_sec:.0} elem/s)"));
        }
        (Some(Throughput::Bytes(_)), Some(per_sec)) => {
            line.push_str(&format!("  ({:.1} MiB/s)", per_sec / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
    Some(stats)
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        if let Some(stats) = run_one(&full, self.sample_size, self.throughput, &mut f) {
            self.criterion.records.push(stats);
        }
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        if let Some(stats) = run_one(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        }) {
            self.criterion.records.push(stats);
        }
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<SampleStats>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if let Some(stats) = run_one(&id.label, 10, None, &mut f) {
            self.records.push(stats);
        }
        self
    }

    /// Statistics of every benchmark completed so far, in run order.
    pub fn stats(&self) -> &[SampleStats] {
        &self.records
    }

    /// Renders every completed benchmark as a JSON document:
    /// `{"benchmarks":[{...}, ...]}`, one object per benchmark with
    /// `name`, `samples`, `mean_ns`, `median_ns`, `min_ns`, `max_ns`,
    /// `throughput_per_sec`, and `throughput_unit` fields.
    pub fn json_report(&self) -> String {
        let mut out = String::from("{\"benchmarks\":[\n");
        for (i, stats) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            out.push_str(&stats.to_json());
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            results_ns: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.results_ns.len(), 5);
        assert_eq!(calls, 6, "one warm-up plus five samples");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(150).label, "150");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(2)
            .throughput(Throughput::Elements(10))
            .bench_function("b", |b| {
                b.iter(|| std::hint::black_box(1 + 1));
                ran = true;
            });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn sample_stats_median_and_throughput() {
        let odd = SampleStats::from_samples("odd", &[3.0, 1.0, 2.0], None).unwrap();
        assert_eq!(odd.median_ns, 2.0);
        assert_eq!(odd.min_ns, 1.0);
        assert_eq!(odd.max_ns, 3.0);
        assert_eq!(odd.mean_ns, 2.0);
        assert_eq!(odd.throughput_per_sec(), None);

        let even = SampleStats::from_samples(
            "even",
            &[1e9, 3e9, 2e9, 4e9],
            Some(Throughput::Elements(500)),
        )
        .unwrap();
        assert_eq!(even.median_ns, 2.5e9);
        // 500 elements in a 2.5 s median -> 200 elem/s.
        assert!((even.throughput_per_sec().unwrap() - 200.0).abs() < 1e-9);

        assert!(SampleStats::from_samples("empty", &[], None).is_none());
    }

    #[test]
    fn criterion_collects_stats_and_emits_json() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(3)
                .throughput(Throughput::Bytes(1024))
                .bench_function("fast", |b| b.iter(|| std::hint::black_box(2 * 2)));
            group.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| std::hint::black_box(1)));
        assert_eq!(c.stats().len(), 2);
        assert_eq!(c.stats()[0].name, "g/fast");
        assert_eq!(c.stats()[0].samples, 3);
        assert_eq!(c.stats()[1].name, "standalone");

        let json = c.json_report();
        assert!(json.starts_with("{\"benchmarks\":["));
        assert!(json.contains("\"name\":\"g/fast\""));
        assert!(json.contains("\"throughput_unit\":\"bytes\""));
        assert!(json.contains("\"name\":\"standalone\""));
        assert!(json.contains("\"throughput_unit\":null"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn human_ns_picks_sane_units() {
        assert!(human_ns(500.0).ends_with("ns"));
        assert!(human_ns(5_000.0).contains("µs"));
        assert!(human_ns(5_000_000.0).contains("ms"));
        assert!(human_ns(5e9).ends_with(" s"));
    }
}
