//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The real criterion is a registry dependency this workspace cannot
//! fetch offline, so the bench binaries link against this shim instead.
//! It preserves the API shape the benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`)
//! and reports plain wall-clock statistics: each benchmark body is
//! warmed up once, then timed over `sample_size` samples, and the mean,
//! minimum, and maximum per-iteration times are printed.
//!
//! No statistical analysis, no HTML reports, no comparison against
//! saved baselines — run times are indicative, not criterion-grade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation; recorded for display only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] times the body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// warm-up call) and records per-iteration nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let _warmup = f();
        self.results_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed();
            std::hint::black_box(&out);
            self.results_ns.push(elapsed.as_nanos() as f64);
        }
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(
    full_name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        results_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.results_ns.is_empty() {
        println!("{full_name:<40} (no measurements)");
        return;
    }
    let n = bencher.results_ns.len() as f64;
    let mean = bencher.results_ns.iter().sum::<f64>() / n;
    let min = bencher
        .results_ns
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.results_ns.iter().cloned().fold(0.0, f64::max);
    let mut line = format!(
        "{full_name:<40} mean {:>12}  min {:>12}  max {:>12}",
        human_ns(mean),
        human_ns(min),
        human_ns(max)
    );
    if let Some(Throughput::Elements(elems)) = throughput {
        let per_sec = elems as f64 / (mean / 1e9);
        line.push_str(&format!("  ({per_sec:.0} elem/s)"));
    } else if let Some(Throughput::Bytes(bytes)) = throughput {
        let per_sec = bytes as f64 / (mean / 1e9);
        line.push_str(&format!("  ({:.1} MiB/s)", per_sec / (1024.0 * 1024.0)));
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.label, 10, None, &mut f);
        self
    }
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            results_ns: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.results_ns.len(), 5);
        assert_eq!(calls, 6, "one warm-up plus five samples");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(150).label, "150");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(2)
            .throughput(Throughput::Elements(10))
            .bench_function("b", |b| {
                b.iter(|| std::hint::black_box(1 + 1));
                ran = true;
            });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn human_ns_picks_sane_units() {
        assert!(human_ns(500.0).ends_with("ns"));
        assert!(human_ns(5_000.0).contains("µs"));
        assert!(human_ns(5_000_000.0).contains("ms"));
        assert!(human_ns(5e9).ends_with(" s"));
    }
}
