//! Property-based tests for the clustering crate.

use ecg_clustering::hierarchical::{agglomerative, Linkage};
use ecg_clustering::{
    average_group_interaction_cost, group_interaction_cost, kmeans, kmeans_capped, kmeans_masked,
    kmeans_minibatch, kmeans_reference, server_distance_weights, AssignMode, BlockedCenters,
    CenterTree, FeatureMatrix, Initializer, KmeansConfig, MiniBatchConfig,
};
use ecg_coords::FeatureMask;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_points() -> impl Strategy<Value = FeatureMatrix> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, 2), 2..40)
        .prop_map(|rows| FeatureMatrix::from_rows(&rows))
}

/// Query points and center sets of a shared random dimension, with the
/// center coordinates snapped to a coarse grid. Snapping manufactures
/// exact duplicate centers and mirror-symmetric (equidistant) layouts
/// with high probability — exactly the configurations where a sloppy
/// tie-break in the tree traversal would pick a different winner than
/// the ascending-index blocked scan.
fn arb_tree_inputs() -> impl Strategy<Value = (FeatureMatrix, FeatureMatrix)> {
    (1usize..7).prop_flat_map(|dim| {
        let points =
            proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, dim), 1..30)
                .prop_map(|rows| FeatureMatrix::from_rows(&rows));
        let centers = proptest::collection::vec(
            proptest::collection::vec((0u8..5).prop_map(|v| f64::from(v) * 25.0), dim),
            1..90,
        )
        .prop_map(|rows| FeatureMatrix::from_rows(&rows));
        (points, centers)
    })
}

/// Points of a random dimension (not just 2-D) for the engine
/// equivalence test below.
fn arb_dim_points() -> impl Strategy<Value = FeatureMatrix> {
    (1usize..7).prop_flat_map(|dim| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, dim), 2..40)
            .prop_map(|rows| FeatureMatrix::from_rows(&rows))
    })
}

proptest! {
    #[test]
    fn kmeans_output_is_a_partition(
        points in arb_points(),
        k_frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let k = ((points.len() as f64 * k_frac).ceil() as usize).clamp(1, points.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let r = kmeans(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut rng,
        ).unwrap();
        // Every point assigned to a valid cluster.
        prop_assert_eq!(r.assignments().len(), points.len());
        prop_assert!(r.assignments().iter().all(|&c| c < k));
        // Exactly k non-empty clusters.
        let sizes = r.cluster_sizes();
        prop_assert_eq!(sizes.len(), k);
        prop_assert!(sizes.iter().all(|&s| s > 0));
        prop_assert_eq!(sizes.iter().sum::<usize>(), points.len());
    }

    #[test]
    fn kmeans_assigns_each_point_to_nearest_center(
        points in arb_points(),
        seed in any::<u64>(),
    ) {
        let k = (points.len() / 3).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let r = kmeans(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut rng,
        ).unwrap();
        if !r.converged() {
            // Iteration cap hit: the invariant may not hold yet.
            return Ok(());
        }
        let sq = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        for (i, p) in points.iter_rows().enumerate() {
            let assigned = sq(p, r.centers().row(r.assignments()[i]));
            for center in r.centers().iter_rows() {
                prop_assert!(assigned <= sq(p, center) + 1e-9);
            }
        }
    }

    #[test]
    fn pruned_kmeans_matches_naive_reference(
        points in arb_points(),
        k_frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        // The bound-pruned assignment loop must be invisible: same
        // assignments, same centers (bit for bit), same iteration count
        // and convergence flag as the retained naive implementation.
        let k = ((points.len() as f64 * k_frac).ceil() as usize).clamp(1, points.len());
        let mut rng_fast = StdRng::seed_from_u64(seed);
        let mut rng_ref = StdRng::seed_from_u64(seed);
        let fast = kmeans(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut rng_fast,
        ).unwrap();
        let reference = kmeans_reference(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut rng_ref,
        ).unwrap();
        prop_assert_eq!(fast.assignments(), reference.assignments());
        prop_assert_eq!(fast.centers().as_flat(), reference.centers().as_flat());
        prop_assert_eq!(fast.iterations(), reference.iterations());
        prop_assert_eq!(fast.converged(), reference.converged());
    }

    #[test]
    fn weighted_init_with_uniform_weights_matches_contract(
        points in arb_points(),
        seed in any::<u64>(),
    ) {
        let k = (points.len() / 2).max(1);
        let weights = vec![1.0; points.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let chosen = Initializer::Weighted(weights)
            .select(&points, k, &mut rng)
            .unwrap();
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
    }

    #[test]
    fn server_distance_weights_are_monotone_decreasing(
        mut distances in proptest::collection::vec(0.1f64..1000.0, 2..30),
        theta in 0.0f64..4.0,
    ) {
        distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let w = server_distance_weights(&distances, theta);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-12);
        }
    }

    #[test]
    fn gic_is_scale_equivariant(
        groups in proptest::collection::vec(
            proptest::collection::vec(0usize..20, 0..6), 1..5),
        scale in 0.1f64..10.0,
    ) {
        let cost = |a: usize, b: usize| (a as f64 - b as f64).abs();
        let scaled = |a: usize, b: usize| scale * cost(a, b);
        let base = average_group_interaction_cost(&groups, cost);
        let after = average_group_interaction_cost(&groups, scaled);
        prop_assert!((after - scale * base).abs() < 1e-9);
    }

    #[test]
    fn gic_bounded_by_max_pair_cost(
        members in proptest::collection::vec(0usize..50, 2..10),
    ) {
        let cost = |a: usize, b: usize| (a as f64 - b as f64).abs();
        let gic = group_interaction_cost(&members, cost);
        let max = members.iter().flat_map(|&a| {
            members.iter().map(move |&b| cost(a, b))
        }).fold(0.0f64, f64::max);
        prop_assert!(gic <= max + 1e-12);
        prop_assert!(gic >= 0.0);
    }

    #[test]
    fn agglomerative_is_a_partition(
        n in 1usize..25,
        k_frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        let k = ((n as f64 * k_frac).ceil() as usize).clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let pos: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let clusters = agglomerative(n, k, linkage, |a, b| (pos[a] - pos[b]).abs());
            prop_assert_eq!(clusters.len(), k);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn capped_kmeans_respects_cap_and_partitions(
        points in arb_points(),
        k_frac in 0.05f64..1.0,
        slack in 0usize..5,
        seed in any::<u64>(),
    ) {
        let n = points.len();
        let k = ((n as f64 * k_frac).ceil() as usize).clamp(1, n);
        let max_size = n.div_ceil(k) + slack;
        let mut rng = StdRng::seed_from_u64(seed);
        let r = kmeans_capped(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            max_size,
            &mut rng,
        ).unwrap();
        let sizes = r.cluster_sizes();
        prop_assert_eq!(sizes.len(), k);
        prop_assert!(sizes.iter().all(|&s| s >= 1 && s <= max_size), "{:?}", sizes);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    #[test]
    fn parallel_kmeans_matches_sequential_and_reference(
        points in arb_points(),
        k_frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        // The parallel assignment scans must be invisible three ways:
        // forced 4 workers == forced 1 worker (thread-count invariance)
        // == the naive reference (algorithmic equivalence), all bit for
        // bit. Thread-count invariance holds by construction (fixed
        // chunks, ordered reduction), so flipping the global override
        // here cannot perturb concurrently running tests.
        let k = ((points.len() as f64 * k_frac).ceil() as usize).clamp(1, points.len());
        let run_at = |threads: usize| {
            ecg_par::set_max_threads(Some(threads));
            let r = kmeans(
                &points,
                KmeansConfig::new(k),
                &Initializer::RandomRepresentative,
                &mut StdRng::seed_from_u64(seed),
            ).unwrap();
            ecg_par::set_max_threads(None);
            r
        };
        let seq = run_at(1);
        let par = run_at(4);
        let reference = kmeans_reference(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        prop_assert_eq!(par.assignments(), seq.assignments());
        prop_assert_eq!(par.centers().as_flat(), seq.centers().as_flat());
        prop_assert_eq!(par.iterations(), seq.iterations());
        prop_assert_eq!(par.converged(), seq.converged());
        prop_assert_eq!(seq.assignments(), reference.assignments());
        prop_assert_eq!(seq.centers().as_flat(), reference.centers().as_flat());
        prop_assert_eq!(seq.iterations(), reference.iterations());
    }

    #[test]
    fn masked_kmeans_equals_full_kmeans_when_nothing_is_missing(
        points in arb_points(),
        k_frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        // With every feature observed, the masked Lloyd loop must be
        // indistinguishable from the plain one — same assignments, same
        // centers bit for bit, same iteration count and convergence
        // flag. This pins the degraded-mode path to the healthy one so
        // resilience-on cannot perturb fault-free runs.
        let k = ((points.len() as f64 * k_frac).ceil() as usize).clamp(1, points.len());
        let mask = FeatureMask::all_observed(points.len(), points.dim());
        let full = kmeans(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let masked = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        prop_assert_eq!(masked.assignments(), full.assignments());
        for (a, b) in masked.centers().as_flat().iter().zip(full.centers().as_flat()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(masked.iterations(), full.iterations());
        prop_assert_eq!(masked.converged(), full.converged());
    }

    #[test]
    fn masked_kmeans_is_a_partition_under_masking(
        points in arb_points(),
        k_frac in 0.01f64..1.0,
        drop_frac in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        let n = points.len();
        let dim = points.dim();
        let k = ((n as f64 * k_frac).ceil() as usize).clamp(1, n);
        // Mask random cells but always keep component 0 observed, so no
        // row needs quarantining.
        let mut mask = FeatureMask::all_observed(n, dim);
        let mut mask_rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for i in 0..n {
            for j in 1..dim {
                if mask_rng.gen_bool(drop_frac) {
                    mask.set(i, j, false);
                }
            }
        }
        let r = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        prop_assert_eq!(r.assignments().len(), n);
        let sizes = r.cluster_sizes();
        prop_assert_eq!(sizes.len(), k);
        prop_assert!(sizes.iter().all(|&s| s > 0));
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        // Centers stay finite despite missing cells.
        prop_assert!(r.centers().as_flat().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn blocked_scan_matches_naive_nearest_center(
        points in arb_points(),
        centers in arb_points(),
    ) {
        // The tiled kernel must be invisible: same winner, same squared
        // distance bit for bit as the obvious row-major scan with the
        // same left-to-right accumulation order.
        let blocked = BlockedCenters::new(&centers);
        for p in points.iter_rows() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, row) in centers.iter_rows().enumerate() {
                let d: f64 = p.iter().zip(row).map(|(x, y)| (x - y) * (x - y)).sum();
                if d < best_d {
                    best = c;
                    best_d = d;
                }
            }
            let (bc, bd, _) = blocked.scan(p);
            prop_assert_eq!(bc, best);
            prop_assert_eq!(bd.to_bits(), best_d.to_bits());
        }
    }

    #[test]
    fn tree_query_matches_blocked_scan_bit_for_bit(
        (points, centers) in arb_tree_inputs(),
    ) {
        // The KD-tree query must be invisible next to the blocked tile
        // scan: same winning index (lowest index on exact distance
        // ties), same best and second-best squared distances bit for
        // bit — over random dimensions, duplicate centers, and
        // grid-symmetric equidistant layouts.
        let blocked = BlockedCenters::new(&centers);
        let tree = CenterTree::new(&centers);
        for p in points.iter_rows() {
            let (bc, bd, bs) = blocked.scan(p);
            let (tc, td, ts) = tree.query(p);
            prop_assert_eq!(tc, bc);
            prop_assert_eq!(td.to_bits(), bd.to_bits());
            prop_assert_eq!(ts.to_bits(), bs.to_bits());
        }
    }

    #[test]
    fn tree_kmeans_matches_blocked_and_reference(
        points in arb_dim_points(),
        k_frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        // Full three-way equivalence across assignment engines: the
        // tree-pruned Lloyd loop == the blocked-scan loop == the naive
        // reference, bit for bit in assignments, centers, iteration
        // count, and convergence flag. The engine knob moves wall-clock
        // only; results are contractually identical.
        let k = ((points.len() as f64 * k_frac).ceil() as usize).clamp(1, points.len());
        let run = |mode: AssignMode| {
            kmeans(
                &points,
                KmeansConfig::new(k).assign(mode),
                &Initializer::RandomRepresentative,
                &mut StdRng::seed_from_u64(seed),
            ).unwrap()
        };
        let tree = run(AssignMode::Tree);
        let blocked = run(AssignMode::Blocked);
        let reference = kmeans_reference(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        prop_assert_eq!(tree.assignments(), blocked.assignments());
        prop_assert_eq!(tree.assignments(), reference.assignments());
        for (a, b) in tree.centers().as_flat().iter().zip(blocked.centers().as_flat()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in tree.centers().as_flat().iter().zip(reference.centers().as_flat()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(tree.iterations(), blocked.iterations());
        prop_assert_eq!(tree.iterations(), reference.iterations());
        prop_assert_eq!(tree.converged(), blocked.converged());
        prop_assert_eq!(tree.converged(), reference.converged());
    }

    #[test]
    fn minibatch_kmeans_is_thread_count_invariant(
        points in arb_points(),
        k_frac in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        // The derived-seed batch streams and chunked blocked assignment
        // must make mini-batch results a pure function of the seed:
        // forced 1, 2, and 8 workers all bit-identical. Invariance holds
        // by construction, so flipping the global override here cannot
        // perturb concurrently running tests.
        let k = ((points.len() as f64 * k_frac).ceil() as usize).clamp(1, points.len());
        let mb = MiniBatchConfig::default().batch_size(16).iterations(8);
        let run_at = |threads: usize| {
            ecg_par::set_max_threads(Some(threads));
            let r = kmeans_minibatch(
                &points,
                KmeansConfig::new(k),
                mb,
                &Initializer::RandomRepresentative,
                &mut StdRng::seed_from_u64(seed),
            ).unwrap();
            ecg_par::set_max_threads(None);
            r
        };
        let t1 = run_at(1);
        for wide in [run_at(2), run_at(8)] {
            prop_assert_eq!(wide.assignments(), t1.assignments());
            for (a, b) in wide.centers().as_flat().iter().zip(t1.centers().as_flat()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(wide.iterations(), t1.iterations());
        }
        // And it is still a partition into k non-empty clusters.
        let sizes = t1.cluster_sizes();
        prop_assert_eq!(sizes.len(), k);
        prop_assert!(sizes.iter().all(|&s| s > 0));
        prop_assert_eq!(sizes.iter().sum::<usize>(), points.len());
    }

    #[test]
    fn capped_kmeans_with_loose_cap_is_a_valid_partition(
        points in arb_points(),
        seed in any::<u64>(),
    ) {
        let n = points.len();
        let k = (n / 2).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        // cap = n is never binding.
        let r = kmeans_capped(
            &points,
            KmeansConfig::new(k),
            &Initializer::RandomRepresentative,
            n,
            &mut rng,
        ).unwrap();
        let mut all: Vec<usize> = r.clusters().into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}

/// Multi-chunk point set (> `ecg_par::DEFAULT_CHUNK` rows), so the
/// parallel scans genuinely split across work items — the proptest
/// sizes above all fit in one chunk.
fn big_points(n: usize, seed: u64) -> FeatureMatrix {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..4).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    FeatureMatrix::from_rows(&rows)
}

#[test]
fn multi_chunk_parallel_kmeans_matches_reference_bit_for_bit() {
    let points = big_points(700, 13);
    let config = KmeansConfig::new(25);
    let run_at = |threads: usize| {
        ecg_par::set_max_threads(Some(threads));
        let r = kmeans(
            &points,
            config,
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        ecg_par::set_max_threads(None);
        r
    };
    let seq = run_at(1);
    let par = run_at(4);
    let reference = kmeans_reference(
        &points,
        config,
        &Initializer::RandomRepresentative,
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap();
    assert_eq!(par.assignments(), seq.assignments());
    assert_eq!(par.assignments(), reference.assignments());
    for (a, b) in par
        .centers()
        .as_flat()
        .iter()
        .zip(reference.centers().as_flat())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(par.iterations(), reference.iterations());
}

#[test]
fn multi_chunk_minibatch_kmeans_is_thread_count_invariant() {
    // A batch larger than `ecg_par::DEFAULT_CHUNK` so the per-iteration
    // assignment genuinely splits across work items, and n large enough
    // that the final full assignment does too.
    let points = big_points(900, 41);
    let mb = MiniBatchConfig::default().batch_size(512).iterations(12);
    let run_at = |threads: usize| {
        ecg_par::set_max_threads(Some(threads));
        let r = kmeans_minibatch(
            &points,
            KmeansConfig::new(30),
            mb,
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(17),
        )
        .unwrap();
        ecg_par::set_max_threads(None);
        r
    };
    let t1 = run_at(1);
    for wide in [run_at(2), run_at(8)] {
        assert_eq!(wide.assignments(), t1.assignments());
        for (a, b) in wide.centers().as_flat().iter().zip(t1.centers().as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    let sizes = t1.cluster_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 900);
    assert!(sizes.iter().all(|&s| s > 0));
}

#[test]
fn multi_chunk_quality_metrics_are_thread_count_invariant() {
    use ecg_clustering::mean_silhouette;
    let points = big_points(600, 29);
    let clustering = kmeans(
        &points,
        KmeansConfig::new(12),
        &Initializer::RandomRepresentative,
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    let groups = clustering.clusters();
    let cost = ecg_clustering::euclidean_cost(&points);
    let run_at = |threads: usize| {
        ecg_par::set_max_threads(Some(threads));
        let gic = average_group_interaction_cost(&groups, &cost);
        let sil = mean_silhouette(&groups, &cost);
        ecg_par::set_max_threads(None);
        (gic, sil)
    };
    let (gic1, sil1) = run_at(1);
    let (gic4, sil4) = run_at(4);
    assert_eq!(gic1.to_bits(), gic4.to_bits());
    assert_eq!(sil1.to_bits(), sil4.to_bits());
}
