//! Agglomerative (hierarchical) clustering.
//!
//! Not part of the paper's schemes — included as the ablation baseline
//! the paper gestures at ("any standard clustering algorithm may be
//! similarly modified", §4.1). Operating directly on a dissimilarity
//! matrix, it also provides a best-effort "ideal" clustering of the true
//! RTT space against which the landmark-based schemes' accuracy loss can
//! be measured.

/// Linkage criterion: how the distance between two clusters is derived
/// from member distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Mean pairwise distance (UPGMA). Matches the group-interaction-cost
    /// objective most closely; the default.
    #[default]
    Average,
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
}

/// Clusters `n` items into `k` groups by greedy agglomeration.
///
/// Starts from singletons and repeatedly merges the pair of clusters at
/// minimum linkage distance until `k` clusters remain. `O(n^3)` with the
/// naive implementation, which is fine at the experiment scale (≤ 500
/// caches).
///
/// Returns the clusters as ascending-sorted index lists, ordered by their
/// smallest member.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
///
/// # Examples
///
/// ```
/// use ecg_clustering::hierarchical::{agglomerative, Linkage};
///
/// // Two tight pairs on a line: 0-1 and 10-11.
/// let pos = [0.0f64, 1.0, 10.0, 11.0];
/// let clusters = agglomerative(4, 2, Linkage::Average, |a, b| {
///     (pos[a] - pos[b]).abs()
/// });
/// assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
/// ```
pub fn agglomerative(
    n: usize,
    k: usize,
    linkage: Linkage,
    dist: impl Fn(usize, usize) -> f64,
) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one cluster");
    assert!(k <= n, "cannot form {k} clusters from {n} items");

    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let d = cluster_distance(&clusters[a], &clusters[b], linkage, &dist);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        let (a, b, _) = best.expect("more than k clusters remain");
        let merged = clusters.swap_remove(b);
        clusters[a].extend(merged);
    }
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
}

fn cluster_distance(
    a: &[usize],
    b: &[usize],
    linkage: Linkage,
    dist: &impl Fn(usize, usize) -> f64,
) -> f64 {
    let pairs = a.iter().flat_map(|&x| b.iter().map(move |&y| dist(x, y)));
    match linkage {
        Linkage::Average => {
            let mut sum = 0.0;
            let mut count = 0usize;
            for d in pairs {
                sum += d;
                count += 1;
            }
            sum / count as f64
        }
        Linkage::Single => pairs.fold(f64::INFINITY, f64::min),
        Linkage::Complete => pairs.fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(pos: &[f64]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |a, b| (pos[a] - pos[b]).abs()
    }

    #[test]
    fn merges_obvious_pairs() {
        let pos = [0.0, 0.5, 20.0, 20.5, 40.0, 40.5];
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let c = agglomerative(6, 3, linkage, line(&pos));
            assert_eq!(c, vec![vec![0, 1], vec![2, 3], vec![4, 5]], "{linkage:?}");
        }
    }

    #[test]
    fn k_equals_n_returns_singletons() {
        let pos = [1.0, 2.0, 3.0];
        let c = agglomerative(3, 3, Linkage::Average, line(&pos));
        assert_eq!(c, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn k_one_returns_everything() {
        let pos = [1.0, 5.0, 9.0];
        let c = agglomerative(3, 1, Linkage::Average, line(&pos));
        assert_eq!(c, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn single_linkage_chains_where_average_splits() {
        // A chain 0,1,2,...,5 with equal gaps plus a far point: single
        // linkage happily merges the chain first.
        let pos = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        let c = agglomerative(7, 2, Linkage::Single, line(&pos));
        assert_eq!(c[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c[1], vec![6]);
    }

    #[test]
    fn clusters_partition_items() {
        let pos: Vec<f64> = (0..12).map(|i| (i * i) as f64).collect();
        let c = agglomerative(12, 4, Linkage::Complete, line(&pos));
        let mut all: Vec<usize> = c.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn too_many_clusters_panics() {
        let _ = agglomerative(2, 3, Linkage::Average, |_, _| 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_clusters_panics() {
        let _ = agglomerative(2, 0, Linkage::Average, |_, _| 1.0);
    }
}
