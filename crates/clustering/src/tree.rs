//! Tree-structured center pruning: sublinear nearest-center queries
//! over the *centers* of a K-means run.
//!
//! The blocked kernel in [`crate::blocked`] made the k-way scan
//! FLOP-bound, but it is still Θ(k·d) per point — and the formation
//! pipeline sets k = N/100, so at N = 100k every point pays for 1 000
//! centers per scan. [`CenterTree`] is a KD-tree over the centers in
//! landmark space, rebuilt once per Lloyd iteration (centers move every
//! iteration; points never do), whose branch-and-bound
//! [`query`](CenterTree::query) visits only the tiles that can still
//! contain one of the two nearest centers. Composed with the Hamerly
//! bounds in [`crate::kmeans()`] — which already skip the scan entirely
//! for most points — the tree makes the *surviving* exact scans
//! sublinear in k.
//!
//! # Why a KD-tree with explicit bounding boxes (and not a ball-tree)
//!
//! Landmark space is low-dimensional (8–25 coordinates) and axis
//! bounds are exact coordinate values, so an axis-aligned bounding box
//! per node gives a lower bound that is (a) tight in practice and
//! (b) *provably conservative in floating point* — each per-dimension
//! clamped difference `max(lo−x, x−hi, 0)` rounds to a value no larger
//! than the rounded `|x−c|` of any center `c` inside the box
//! (f64 subtraction, squaring, and addition are monotone under
//! rounding, and both sums accumulate coordinate-ascending). A
//! ball-tree bound needs `√` and a subtraction of radii, whose
//! rounding can *overshoot* the true bound and would force an epsilon
//! slop — fatal for the bit-exactness contract below.
//!
//! # Bit-exactness contract
//!
//! [`CenterTree::query`] returns exactly what [`BlockedCenters::scan`]
//! returns — best index, best squared distance, second-best squared
//! distance, ties and all:
//!
//! * **Leaves are [`ecg_coords::CenterTiles`]-layout tiles** of ≤ [`LANE_WIDTH`]
//!   centers: per-pair distances run the identical lane-transposed
//!   accumulation in coordinate-ascending order, so every distance the
//!   tree computes is bit-identical to the scalar `sq_l2` left fold.
//! * **Selection is order-independent by construction.** The running
//!   `(best, second)` pair holds the two smallest distance *values*
//!   seen (order-independent as values), and the best index ties break
//!   lexicographically on `(d², center index)` — so the winner is the
//!   lowest-index argmin no matter which leaf the traversal reaches
//!   first, matching the ascending-index strict-`<` scan.
//! * **Pruning is strictly conservative.** A subtree is skipped only
//!   when its box lower bound *strictly exceeds* the current
//!   second-best distance; every center whose distance could equal the
//!   final best or second-best is therefore evaluated exactly, and the
//!   lower bound never overshoots (see above), so no equal-distance
//!   lower-index center is ever lost.
//!
//! The proptest suite pins `tree == blocked == kmeans_reference` down
//! to the bit, including duplicate points and equidistant centers.
//!
//! # Cost model
//!
//! Rebuild is O(k log² k · d) per iteration (median splits over index
//! slices, allocation-reusing like [`ecg_coords::CenterTiles::refill`]) — for
//! k = N/100 that is two orders of magnitude below one O(n·k·d)
//! assignment scan, and the accumulated wall-clock is reported
//! separately via [`take_tree_build_ms`]. Queries are O(log k · d)
//! when centers are well-separated and degrade gracefully to the full
//! scan (never worse than a constant factor over it) when they are
//! not.

use crate::blocked::BlockedCenters;
use ecg_coords::{FeatureMatrix, LANE_WIDTH};
use std::cell::Cell;
use std::time::Instant;

/// Below this k, [`AssignMode::Auto`] stays on the flat blocked scan:
/// a tree over a handful of centers costs more in traversal overhead
/// than the scan it replaces (the paper-scale experiments run k ≤ 40).
pub const TREE_AUTO_MIN_K: usize = 64;

/// Which nearest-center engine the assignment scans use.
///
/// All three produce bit-identical clusterings (the tree's exactness
/// contract is the point of [`CenterTree`]); the mode only moves
/// wall-clock. `Auto` — the default — picks the tree once k reaches
/// [`TREE_AUTO_MIN_K`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignMode {
    /// Blocked scan below [`TREE_AUTO_MIN_K`] centers, tree at or
    /// above it.
    #[default]
    Auto,
    /// Always the flat blocked scan ([`BlockedCenters`]).
    Blocked,
    /// Always the KD-tree ([`CenterTree`]).
    Tree,
}

impl AssignMode {
    /// Whether this mode routes a `k`-center scan through the tree.
    #[inline]
    pub fn uses_tree(self, k: usize) -> bool {
        match self {
            AssignMode::Auto => k >= TREE_AUTO_MIN_K,
            AssignMode::Blocked => false,
            AssignMode::Tree => true,
        }
    }
}

impl std::str::FromStr for AssignMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(AssignMode::Auto),
            "blocked" => Ok(AssignMode::Blocked),
            "tree" => Ok(AssignMode::Tree),
            other => Err(format!(
                "assign mode must be auto, blocked, or tree, got {other:?}"
            )),
        }
    }
}

thread_local! {
    /// Nanoseconds spent (re)building [`CenterTree`]s on this thread.
    /// Builds always run on the thread driving the Lloyd loop, so the
    /// scaled pipeline can read one cell; queries never touch it.
    static TREE_BUILD_NS: Cell<u64> = const { Cell::new(0) };
}

/// Drains the tree-build wall-clock accumulated on the calling thread
/// since the last drain, in milliseconds. Purely observational — the
/// clustering never branches on it.
pub fn take_tree_build_ms() -> f64 {
    TREE_BUILD_NS.with(|c| c.replace(0)) as f64 / 1e6
}

/// A KD-tree node. Nodes are stored pre-order in a flat vector; node
/// `i`'s bounding box lives at `bounds[i * 2 * dim ..]` (lows, then
/// highs).
#[derive(Debug, Clone, Copy)]
enum Node {
    /// `lanes` centers staged in tile `tile` (lane order = ascending
    /// original center index).
    Leaf { tile: u32, lanes: u32 },
    /// Children by node id; every internal node has both.
    Internal { left: u32, right: u32 },
}

/// KD-tree over a center matrix for exact two-nearest-center queries
/// (see the module docs for the layout and exactness argument). Build
/// once per clustering run, [`refill`](CenterTree::refill) after each
/// center update; both reuse the allocations.
#[derive(Debug, Clone)]
pub struct CenterTree {
    dim: usize,
    centers: usize,
    nodes: Vec<Node>,
    /// Per node: `dim` lows then `dim` highs (exact coordinate values).
    bounds: Vec<f64>,
    /// Leaf tiles, `dim * LANE_WIDTH` values each, identical layout to
    /// [`ecg_coords::CenterTiles`]; padding lanes are zero and never read back.
    tiles: Vec<f64>,
    /// Original center index of each leaf lane (`LANE_WIDTH` slots per
    /// tile; padding slots unused).
    leaf_centers: Vec<u32>,
    /// Build scratch: the permutation being partitioned.
    order: Vec<u32>,
}

/// Traversal stack depth cap: median splits halve the slice, so depth
/// is ≤ ⌈log₂ k⌉ + 1 and 64 entries cover any representable k.
const MAX_DEPTH: usize = 64;

impl CenterTree {
    /// Builds the tree over `centers`.
    pub fn new(centers: &FeatureMatrix) -> Self {
        let mut tree = CenterTree {
            dim: centers.dim(),
            centers: 0,
            nodes: Vec::new(),
            bounds: Vec::new(),
            tiles: Vec::new(),
            leaf_centers: Vec::new(),
            order: Vec::new(),
        };
        tree.refill(centers);
        tree
    }

    /// Rebuilds the tree from a (possibly moved) center matrix,
    /// reusing every allocation — the Lloyd loop calls this once per
    /// iteration.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension changed since construction.
    pub fn refill(&mut self, centers: &FeatureMatrix) {
        let started = Instant::now();
        assert_eq!(
            centers.dim(),
            self.dim,
            "center dimension changed between refills"
        );
        self.centers = centers.len();
        self.nodes.clear();
        self.bounds.clear();
        self.tiles.clear();
        self.leaf_centers.clear();
        self.order.clear();
        self.order.extend(0..centers.len() as u32);
        if !self.order.is_empty() {
            self.build(centers, 0, centers.len());
        }
        TREE_BUILD_NS.with(|c| c.set(c.get() + started.elapsed().as_nanos() as u64));
    }

    /// Number of centers staged.
    pub fn centers(&self) -> usize {
        self.centers
    }

    /// Recursively builds the subtree over `order[lo..hi]`, returning
    /// its node id. Deterministic throughout: split dimension is the
    /// widest spread (ties to the lowest dimension), the partition
    /// sorts by `(coordinate, center index)` with `f64::total_cmp`.
    fn build(&mut self, centers: &FeatureMatrix, lo: usize, hi: usize) -> u32 {
        let dim = self.dim;
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { tile: 0, lanes: 0 });
        // Exact per-dimension bounding box of the slice.
        let base = self.bounds.len();
        let first = centers.row(self.order[lo] as usize);
        self.bounds.extend_from_slice(first);
        self.bounds.extend_from_slice(first);
        for &c in &self.order[lo + 1..hi] {
            let row = centers.row(c as usize);
            for (d, &v) in row.iter().enumerate() {
                if v < self.bounds[base + d] {
                    self.bounds[base + d] = v;
                }
                if v > self.bounds[base + dim + d] {
                    self.bounds[base + dim + d] = v;
                }
            }
        }

        if hi - lo <= LANE_WIDTH {
            // Leaf: lanes in ascending original-index order, staged in
            // the CenterTiles layout (coordinate-major, LANE_WIDTH
            // lanes, zero padding).
            self.order[lo..hi].sort_unstable();
            let tile_len = dim * LANE_WIDTH;
            let tile = (self.tiles.len() / tile_len) as u32;
            let tile_base = self.tiles.len();
            self.tiles.resize(tile_base + tile_len, 0.0);
            let lane_base = self.leaf_centers.len();
            self.leaf_centers.resize(lane_base + LANE_WIDTH, 0);
            for (lane, &c) in self.order[lo..hi].iter().enumerate() {
                self.leaf_centers[lane_base + lane] = c;
                for (d, &v) in centers.row(c as usize).iter().enumerate() {
                    self.tiles[tile_base + d * LANE_WIDTH + lane] = v;
                }
            }
            self.nodes[id as usize] = Node::Leaf {
                tile,
                lanes: (hi - lo) as u32,
            };
        } else {
            let mut split_dim = 0usize;
            let mut widest = f64::NEG_INFINITY;
            for d in 0..dim {
                let spread = self.bounds[base + dim + d] - self.bounds[base + d];
                if spread > widest {
                    widest = spread;
                    split_dim = d;
                }
            }
            self.order[lo..hi].sort_unstable_by(|&a, &b| {
                centers.row(a as usize)[split_dim]
                    .total_cmp(&centers.row(b as usize)[split_dim])
                    .then(a.cmp(&b))
            });
            let mid = lo + (hi - lo) / 2;
            let left = self.build(centers, lo, mid);
            let right = self.build(centers, mid, hi);
            self.nodes[id as usize] = Node::Internal { left, right };
        }
        id
    }

    /// Lower bound on the squared distance from `p` to any center in
    /// node `node`'s bounding box, accumulated coordinate-ascending.
    /// Never exceeds the tile-computed distance of any center inside
    /// (monotone rounding, see the module docs).
    #[inline]
    fn min_d2(&self, node: u32, p: &[f64]) -> f64 {
        let base = node as usize * 2 * self.dim;
        let lows = &self.bounds[base..base + self.dim];
        let highs = &self.bounds[base + self.dim..base + 2 * self.dim];
        let mut acc = 0.0f64;
        for ((&x, &lo), &hi) in p.iter().zip(lows).zip(highs) {
            let diff = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                continue;
            };
            acc += diff * diff;
        }
        acc
    }

    /// Exact two-nearest-centers query: `(best index, best squared
    /// distance, second-best squared distance)`, bit-identical to
    /// [`BlockedCenters::scan`] on the same centers — ties break to
    /// the lowest center index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `p` has the wrong dimension.
    #[inline]
    pub fn query(&self, p: &[f64]) -> (usize, f64, f64) {
        debug_assert_eq!(p.len(), self.dim);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        let mut second_d = f64::INFINITY;
        if self.nodes.is_empty() {
            return (best, best_d, second_d);
        }
        // Fixed-depth DFS stack of (node, box lower bound); the bound
        // is re-tested at pop time because `second_d` shrinks.
        let mut stack = [(0u32, 0.0f64); MAX_DEPTH];
        stack[0] = (0, self.min_d2(0, p));
        let mut top = 1usize;
        let tile_len = self.dim * LANE_WIDTH;
        while top > 0 {
            top -= 1;
            let (id, lb) = stack[top];
            // Strict: a bound equal to the second-best distance may
            // still hide an equal-distance center that changes the
            // lowest-index tie-break.
            if lb > second_d {
                continue;
            }
            match self.nodes[id as usize] {
                Node::Leaf { tile, lanes } => {
                    let t = tile as usize;
                    let tile_data = &self.tiles[t * tile_len..(t + 1) * tile_len];
                    // Identical accumulation to the blocked kernel:
                    // coordinate-ascending, one accumulator per lane.
                    let mut acc = [0.0f64; LANE_WIDTH];
                    for (d, &pv) in p.iter().enumerate() {
                        let row = &tile_data[d * LANE_WIDTH..(d + 1) * LANE_WIDTH];
                        for (a, &cv) in acc.iter_mut().zip(row) {
                            let diff = pv - cv;
                            *a += diff * diff;
                        }
                    }
                    let lane_base = t * LANE_WIDTH;
                    for (lane, &d2) in acc.iter().take(lanes as usize).enumerate() {
                        let idx = self.leaf_centers[lane_base + lane] as usize;
                        // Lexicographic (d², index): order-independent
                        // lowest-index argmin plus the two smallest
                        // distance values.
                        if d2 < best_d || (d2 == best_d && idx < best) {
                            second_d = best_d;
                            best_d = d2;
                            best = idx;
                        } else if d2 < second_d {
                            second_d = d2;
                        }
                    }
                }
                Node::Internal { left, right } => {
                    let lb_left = self.min_d2(left, p);
                    let lb_right = self.min_d2(right, p);
                    // Nearer child popped first (ties: left); the
                    // farther child's bound is re-tested when popped.
                    let (near, far) = if lb_left <= lb_right {
                        ((left, lb_left), (right, lb_right))
                    } else {
                        ((right, lb_right), (left, lb_left))
                    };
                    debug_assert!(top + 2 <= MAX_DEPTH, "center tree deeper than expected");
                    stack[top] = far;
                    stack[top + 1] = near;
                    top += 2;
                }
            }
        }
        (best, best_d, second_d)
    }
}

/// The nearest-center engine an assignment scan runs on: the flat
/// blocked kernel or the KD-tree, per [`AssignMode`]. Both arms return
/// bit-identical triples, so callers are free to switch on k.
#[derive(Debug, Clone)]
pub(crate) enum CenterScanner {
    Blocked(BlockedCenters),
    Tree(CenterTree),
}

impl CenterScanner {
    /// Stages `centers` on the engine `mode` selects for this k.
    pub(crate) fn stage(centers: &FeatureMatrix, mode: AssignMode) -> Self {
        if mode.uses_tree(centers.len()) {
            CenterScanner::Tree(CenterTree::new(centers))
        } else {
            CenterScanner::Blocked(BlockedCenters::new(centers))
        }
    }

    /// Re-stages moved centers, reusing the allocation.
    pub(crate) fn refill(&mut self, centers: &FeatureMatrix) {
        match self {
            CenterScanner::Blocked(b) => b.refill(centers),
            CenterScanner::Tree(t) => t.refill(centers),
        }
    }

    /// `(best index, best d², second-best d²)` — see
    /// [`BlockedCenters::scan`] / [`CenterTree::query`].
    #[inline]
    pub(crate) fn scan(&self, p: &[f64]) -> (usize, f64, f64) {
        match self {
            CenterScanner::Blocked(b) => b.scan(p),
            CenterScanner::Tree(t) => t.query(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(gen: &mut StdRng, rows: usize, dim: usize, span: f64) -> FeatureMatrix {
        let mut m = FeatureMatrix::new(dim);
        for _ in 0..rows {
            let row: Vec<f64> = (0..dim).map(|_| gen.gen_range(-span..span)).collect();
            m.push_row(&row);
        }
        m
    }

    fn assert_matches_blocked(points: &FeatureMatrix, centers: &FeatureMatrix, label: &str) {
        let tree = CenterTree::new(centers);
        let blocked = BlockedCenters::new(centers);
        for (i, p) in points.iter_rows().enumerate() {
            let (bb, bd, bs) = blocked.scan(p);
            let (tb, td, ts) = tree.query(p);
            assert_eq!(bb, tb, "{label}: best index, point {i}");
            assert_eq!(bd.to_bits(), td.to_bits(), "{label}: best d2, point {i}");
            assert_eq!(bs.to_bits(), ts.to_bits(), "{label}: second d2, point {i}");
        }
    }

    #[test]
    fn matches_blocked_scan_across_shapes() {
        let mut gen = StdRng::seed_from_u64(0x7EE5);
        // Single-leaf trees, deep trees, k past the auto threshold,
        // dims from 1 to 24.
        for &(n, k, dim) in &[
            (30usize, 1usize, 3usize),
            (30, 7, 2),
            (30, 8, 2),
            (50, 9, 4),
            (60, 33, 1),
            (60, 100, 8),
            (40, 257, 5),
            (40, 65, 24),
        ] {
            let points = rand_matrix(&mut gen, n, dim, 50.0);
            let centers = rand_matrix(&mut gen, k, dim, 50.0);
            assert_matches_blocked(&points, &centers, &format!("n={n} k={k} dim={dim}"));
        }
    }

    #[test]
    fn duplicate_and_equidistant_centers_tie_to_the_lowest_index() {
        // All-duplicate centers: every distance is exactly equal, so
        // best must be index 0 from any traversal order.
        let row = vec![3.0, -1.0];
        let mut centers = FeatureMatrix::new(2);
        for _ in 0..20 {
            centers.push_row(&row);
        }
        let tree = CenterTree::new(&centers);
        let (best, best_d, second_d) = tree.query(&row);
        assert_eq!(best, 0);
        assert_eq!(best_d, 0.0);
        assert_eq!(second_d, 0.0);
        let points = FeatureMatrix::from_rows(&[vec![0.0, 0.0], row.clone()]);
        assert_matches_blocked(&points, &centers, "all-duplicate centers");

        // Symmetric centers, query on the axis of symmetry: two
        // exactly equidistant centers in different leaves.
        let centers = FeatureMatrix::from_rows(&[
            vec![-10.0, 0.0],
            vec![10.0, 0.0],
            vec![-10.0, 5.0],
            vec![10.0, 5.0],
            vec![-10.0, -5.0],
            vec![10.0, -5.0],
            vec![-30.0, 0.0],
            vec![30.0, 0.0],
            vec![-30.0, 5.0],
            vec![30.0, 5.0],
        ]);
        let points = FeatureMatrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 2.5], vec![0.0, -2.5]]);
        assert_matches_blocked(&points, &centers, "mirror-symmetric centers");
    }

    #[test]
    fn single_center_reports_infinite_second() {
        let centers = FeatureMatrix::from_rows(&[vec![1.0, 2.0]]);
        let tree = CenterTree::new(&centers);
        let (best, best_d, second_d) = tree.query(&[1.0, 2.0]);
        assert_eq!(best, 0);
        assert_eq!(best_d, 0.0);
        assert!(second_d.is_infinite());
    }

    #[test]
    fn refill_follows_center_movement() {
        let mut centers = rand_matrix(&mut StdRng::seed_from_u64(4), 70, 3, 20.0);
        let mut tree = CenterTree::new(&centers);
        assert_eq!(tree.centers(), 70);
        let points = rand_matrix(&mut StdRng::seed_from_u64(5), 40, 3, 30.0);
        for p in points.iter_rows() {
            let blocked = BlockedCenters::new(&centers);
            assert_eq!(tree.query(p), blocked.scan(p));
        }
        // Move every center and refill: queries must track the move.
        for c in 0..centers.len() {
            for v in centers.row_mut(c) {
                *v = -*v + 7.0;
            }
        }
        tree.refill(&centers);
        let blocked = BlockedCenters::new(&centers);
        for p in points.iter_rows() {
            assert_eq!(tree.query(p), blocked.scan(p));
        }
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn dim_change_rejected() {
        let mut tree = CenterTree::new(&FeatureMatrix::from_rows(&[vec![1.0, 2.0]]));
        tree.refill(&FeatureMatrix::from_rows(&[vec![1.0]]));
    }

    #[test]
    fn clustered_centers_prune_most_leaves() {
        // Sanity check that the tree actually prunes: tight, distant
        // blobs of centers mean a query near one blob must not visit
        // every lane. We can't count visits through the public API, so
        // assert correctness on a pathological-for-pruning layout too
        // (all centers on one line).
        let mut gen = StdRng::seed_from_u64(0xC1);
        let mut centers = FeatureMatrix::new(4);
        for blob in 0..32 {
            let base = blob as f64 * 1_000.0;
            for _ in 0..8 {
                let row: Vec<f64> = (0..4).map(|_| base + gen.gen_range(-1.0..1.0)).collect();
                centers.push_row(&row);
            }
        }
        let points = rand_matrix(&mut gen, 50, 4, 33_000.0);
        assert_matches_blocked(&points, &centers, "tight distant blobs");

        let collinear =
            FeatureMatrix::from_rows(&(0..90).map(|i| vec![i as f64, 0.0]).collect::<Vec<_>>());
        let probes = FeatureMatrix::from_rows(&[vec![44.5, 0.0], vec![-3.0, 2.0], vec![91.0, 0.0]]);
        assert_matches_blocked(&probes, &collinear, "collinear centers");
    }

    #[test]
    fn assign_mode_resolution() {
        assert!(!AssignMode::Auto.uses_tree(TREE_AUTO_MIN_K - 1));
        assert!(AssignMode::Auto.uses_tree(TREE_AUTO_MIN_K));
        assert!(!AssignMode::Blocked.uses_tree(1_000_000));
        assert!(AssignMode::Tree.uses_tree(1));
        assert_eq!("tree".parse::<AssignMode>(), Ok(AssignMode::Tree));
        assert_eq!("blocked".parse::<AssignMode>(), Ok(AssignMode::Blocked));
        assert_eq!("auto".parse::<AssignMode>(), Ok(AssignMode::Auto));
        assert!("kd".parse::<AssignMode>().is_err());
    }

    #[test]
    fn scanner_arms_agree_and_build_time_accumulates() {
        let mut gen = StdRng::seed_from_u64(0xABC);
        let centers = rand_matrix(&mut gen, 129, 6, 40.0);
        let points = rand_matrix(&mut gen, 60, 6, 60.0);
        let _ = take_tree_build_ms();
        let tree = CenterScanner::stage(&centers, AssignMode::Tree);
        let blocked = CenterScanner::stage(&centers, AssignMode::Blocked);
        let auto = CenterScanner::stage(&centers, AssignMode::Auto);
        assert!(matches!(auto, CenterScanner::Tree(_)));
        for p in points.iter_rows() {
            assert_eq!(tree.scan(p), blocked.scan(p));
            assert_eq!(auto.scan(p), blocked.scan(p));
        }
        // Two tree builds happened above; the drain sees them once.
        assert!(take_tree_build_ms() >= 0.0);
        assert_eq!(take_tree_build_ms(), 0.0);
    }
}
