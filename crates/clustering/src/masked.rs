//! Masked K-means: Lloyd's algorithm over partially-observed feature
//! vectors.
//!
//! The resilient formation pipeline builds feature matrices whose cells
//! can be *missing* (a probe timed out after retries, or a landmark was
//! unreachable); the accompanying [`FeatureMask`] marks which cells
//! hold real measurements. [`kmeans_masked`] clusters such points
//! without letting the `0.0` placeholders distort geometry:
//!
//! * **Distance** — the squared L2 distance between a point and a
//!   center is computed over the point's *observed* components only and
//!   rescaled by `dim / observed` so partially-observed points remain
//!   comparable to fully-observed ones (the standard expected-distance
//!   estimate under missing-completely-at-random components).
//! * **Center update** — each center component is the mean of the
//!   component over the cluster members that *observed* it; a component
//!   no member observed keeps its previous value.
//! * **Empty-cluster repair** — identical policy to [`crate::kmeans`]:
//!   re-seed on the point currently farthest (in masked distance) from
//!   its own center; the stolen point's unobserved components keep the
//!   center's previous values.
//!
//! With a fully-observed mask every one of those rules degenerates to
//! the plain algorithm, arithmetic operation for arithmetic operation —
//! [`kmeans_masked`] is then **bit-identical** to [`crate::kmeans`] /
//! [`crate::kmeans_reference`] (see the property test). The RNG is
//! consumed by the initializer only, exactly like the plain variants.
//!
//! Rows with *zero* observed components carry no positional information
//! at all and must be quarantined by the caller before clustering (the
//! formation pipeline assigns them to a nearest-landmark fallback
//! group); passing one here panics.

use crate::init::Initializer;
use crate::kmeans::{Clustering, KmeansConfig, KmeansError};
use ecg_coords::{FeatureMask, FeatureMatrix};
use ecg_obs::Obs;
use rand::Rng;

/// Squared L2 distance over the observed components of `p`, rescaled by
/// `dim / observed`. With a fully-observed row this is exactly the
/// plain squared L2 distance (no rescaling multiply is performed).
///
/// # Panics
///
/// Panics if no component is observed.
pub fn masked_sq_l2(p: &[f64], observed: &[bool], center: &[f64]) -> f64 {
    let dim = p.len();
    let mut sum = 0.0;
    let mut seen = 0usize;
    for j in 0..dim {
        if observed[j] {
            let d = p[j] - center[j];
            sum += d * d;
            seen += 1;
        }
    }
    assert!(
        seen > 0,
        "masked distance needs at least one observed component"
    );
    if seen == dim {
        sum
    } else {
        sum * (dim as f64 / seen as f64)
    }
}

/// Runs K-means over partially-observed `points`, clustering on the
/// observed components per `mask` (see the module docs for the masked
/// distance, center-update, and repair rules).
///
/// With a fully-observed mask the result is bit-identical to
/// [`crate::kmeans`] for the same inputs and RNG state.
///
/// # Errors
///
/// Exactly as [`crate::kmeans`].
///
/// # Panics
///
/// Panics if `mask` does not match `points` in shape, or any row has
/// zero observed components (quarantine such rows before clustering).
pub fn kmeans_masked<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    mask: &FeatureMask,
    config: KmeansConfig,
    initializer: &Initializer,
    rng: &mut R,
) -> Result<Clustering, KmeansError> {
    kmeans_masked_observed(points, mask, config, initializer, rng, None)
}

/// Like [`kmeans_masked`], but records `kmeans.*` counters (iterations,
/// reassignments, masked-cell count) into an observability bundle when
/// one is supplied. Instrumentation never draws from the RNG, so the
/// clustering is identical either way.
///
/// # Errors
///
/// Exactly as [`kmeans_masked`].
pub fn kmeans_masked_observed<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    mask: &FeatureMask,
    config: KmeansConfig,
    initializer: &Initializer,
    rng: &mut R,
    mut obs: Option<&mut Obs>,
) -> Result<Clustering, KmeansError> {
    let n = points.len();
    let dim = points.dim();
    assert_eq!(mask.len(), n, "mask rows must match points");
    assert_eq!(mask.dim(), dim, "mask dimension must match points");
    for i in 0..n {
        assert!(
            mask.observed_count(i) > 0,
            "row {i} has no observed components; quarantine it before clustering"
        );
    }
    let k = config.k();
    if n < k {
        return Err(KmeansError::TooFewPoints { points: n, k });
    }

    // Initialization: the only RNG consumer, stream-aligned with the
    // plain variants. Note the initializer sees the raw rows
    // (placeholders included); only RandomRepresentative and Weighted
    // are placeholder-blind — k-means++ reads point values and is
    // therefore not recommended on degraded masks.
    let seeds = initializer.select(points, k, rng)?;
    let mut centers = FeatureMatrix::with_capacity(k, dim);
    for &i in &seeds {
        centers.push_row(points.row(i));
    }

    let mut assignments = vec![0usize; n];
    for (i, slot) in assignments.iter_mut().enumerate() {
        *slot = nearest_center_masked(points.row(i), mask.row(i), &centers);
    }

    let mut iterations = 0;
    let mut converged = false;
    let mut scratch = MaskedUpdateScratch::new(k, dim);
    while iterations < config.iteration_cap() {
        iterations += 1;
        scratch.update_centers(points, mask, &assignments, &mut centers);
        repair_empty_clusters_masked(points, mask, &mut assignments, &mut centers);

        let mut reassigned = 0usize;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let best = nearest_center_masked(points.row(i), mask.row(i), &centers);
            if best != *slot {
                *slot = best;
                reassigned += 1;
            }
        }
        if let Some(o) = obs.as_deref_mut() {
            o.metrics.inc("kmeans.iterations");
            o.metrics.add("kmeans.reassigned", reassigned as u64);
        }
        if reassigned <= config.threshold() {
            converged = true;
            break;
        }
    }

    scratch.update_centers(points, mask, &assignments, &mut centers);
    repair_empty_clusters_masked(points, mask, &mut assignments, &mut centers);

    if let Some(o) = obs {
        o.metrics.inc("kmeans.runs");
        o.metrics
            .add("kmeans.masked_cells", mask.masked_cells() as u64);
        if converged {
            o.metrics.inc("kmeans.converged");
        }
        let mut span = o.phases.span("kmeans");
        span.add_work(iterations as f64);
    }

    Ok(Clustering::from_parts(
        assignments,
        centers,
        iterations,
        converged,
    ))
}

/// Index of the center nearest to `p` under the masked distance (ties
/// break to the lower index, like the plain scans).
fn nearest_center_masked(p: &[f64], observed: &[bool], centers: &FeatureMatrix) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, center) in centers.iter_rows().enumerate() {
        let d = masked_sq_l2(p, observed, center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Reusable per-component sum/count buffers for the masked center
/// update.
struct MaskedUpdateScratch {
    sums: Vec<f64>,
    counts: Vec<usize>,
    dim: usize,
}

impl MaskedUpdateScratch {
    fn new(k: usize, dim: usize) -> Self {
        MaskedUpdateScratch {
            sums: vec![0.0; k * dim],
            counts: vec![0; k * dim],
            dim,
        }
    }

    /// Each center component becomes the mean over the cluster members
    /// that observed it, accumulated in point-index order (bit-stable);
    /// components with no observing member keep their previous value.
    fn update_centers(
        &mut self,
        points: &FeatureMatrix,
        mask: &FeatureMask,
        assignments: &[usize],
        centers: &mut FeatureMatrix,
    ) {
        let dim = self.dim;
        self.sums.fill(0.0);
        self.counts.fill(0);
        for (i, (p, &c)) in points.iter_rows().zip(assignments).enumerate() {
            let observed = mask.row(i);
            let base = c * dim;
            for j in 0..dim {
                if observed[j] {
                    self.sums[base + j] += p[j];
                    self.counts[base + j] += 1;
                }
            }
        }
        for c in 0..centers.len() {
            let base = c * dim;
            let row = centers.row_mut(c);
            for (j, v) in row.iter_mut().enumerate() {
                if self.counts[base + j] > 0 {
                    *v = self.sums[base + j] / self.counts[base + j] as f64;
                }
            }
        }
    }
}

/// Masked-distance twin of the plain empty-cluster repair: re-seed each
/// empty cluster on the point farthest from its own center among
/// clusters with more than one member. The stolen point's unobserved
/// components keep the center's previous values.
fn repair_empty_clusters_masked(
    points: &FeatureMatrix,
    mask: &FeatureMask,
    assignments: &mut [usize],
    centers: &mut FeatureMatrix,
) {
    let k = centers.len();
    loop {
        let mut counts = vec![0usize; k];
        for &c in assignments.iter() {
            counts[c] += 1;
        }
        let Some(empty) = counts.iter().position(|&c| c == 0) else {
            return;
        };
        let mut donor: Option<(usize, f64)> = None;
        for (i, p) in points.iter_rows().enumerate() {
            let c = assignments[i];
            if counts[c] <= 1 {
                continue;
            }
            let d = masked_sq_l2(p, mask.row(i), centers.row(c));
            if donor.is_none_or(|(_, bd)| d > bd) {
                donor = Some((i, d));
            }
        }
        let Some((idx, _)) = donor else {
            return;
        };
        assignments[idx] = empty;
        let observed: Vec<bool> = mask.row(idx).to_vec();
        let row: Vec<f64> = points.row(idx).to_vec();
        let center = centers.row_mut(empty);
        for j in 0..row.len() {
            if observed[j] {
                center[j] = row[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> FeatureMatrix {
        FeatureMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.5],
            vec![0.5, 1.0],
            vec![50.0, 50.0],
            vec![51.0, 50.5],
            vec![50.5, 51.0],
        ])
    }

    #[test]
    fn full_mask_matches_plain_kmeans_bit_for_bit() {
        let points = two_blobs();
        let mask = FeatureMask::all_observed(points.len(), points.dim());
        let plain = kmeans(
            &points,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        let masked = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(plain, masked);
    }

    #[test]
    fn masked_cells_do_not_distort_clusters() {
        // Point 1 lost its second component; the placeholder 0.0 would
        // (spuriously) keep it near the origin blob — which is where it
        // belongs anyway — and point 4 lost its first component, whose
        // placeholder would drag it to the origin blob. The mask must
        // keep it in the far blob.
        let mut points = two_blobs();
        let mut mask = FeatureMask::all_observed(points.len(), points.dim());
        points.row_mut(4)[0] = 0.0;
        mask.set(4, 0, false);
        let r = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(2),
            &Initializer::Provided(vec![0, 3]),
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        let a = r.assignments();
        assert_eq!(a[3], a[4], "masked point stays in its blob: {a:?}");
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[4]);
    }

    #[test]
    fn masked_center_components_average_observers_only() {
        // Two points in one cluster; the second never observed dim 1.
        let points = FeatureMatrix::from_rows(&[vec![2.0, 10.0], vec![4.0, 0.0]]);
        let mut mask = FeatureMask::all_observed(2, 2);
        mask.set(1, 1, false);
        let r = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(1),
            &Initializer::Provided(vec![0]),
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        // dim 0: mean(2, 4) = 3; dim 1: only point 0 observed it -> 10.
        assert_eq!(r.centers().row(0), &[3.0, 10.0]);
    }

    #[test]
    fn masked_distance_rescales_by_observed_fraction() {
        let p = [3.0, 0.0];
        let c = [0.0, 4.0];
        assert_eq!(masked_sq_l2(&p, &[true, true], &c), 25.0);
        // Only the first component observed: 9 scaled by 2/1.
        assert_eq!(masked_sq_l2(&p, &[true, false], &c), 18.0);
    }

    #[test]
    #[should_panic(expected = "no observed components")]
    fn fully_masked_row_panics() {
        let points = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut mask = FeatureMask::all_observed(2, 1);
        mask.set(0, 0, false);
        let _ = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(1),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(0),
        );
    }

    #[test]
    fn too_few_points_is_an_error() {
        let points = FeatureMatrix::from_rows(&[vec![1.0]]);
        let mask = FeatureMask::all_observed(1, 1);
        let err = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap_err();
        assert_eq!(err, KmeansError::TooFewPoints { points: 1, k: 2 });
    }

    #[test]
    fn observed_variant_matches_plain_and_records_counters() {
        let points = two_blobs();
        let mut mask = FeatureMask::all_observed(points.len(), points.dim());
        mask.set(2, 1, false);
        let plain = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        let mut obs = Obs::new();
        let observed = kmeans_masked_observed(
            &points,
            &mask,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            &mut StdRng::seed_from_u64(9),
            Some(&mut obs),
        )
        .unwrap();
        assert_eq!(plain, observed);
        assert_eq!(obs.metrics.counter("kmeans.runs"), 1);
        assert_eq!(obs.metrics.counter("kmeans.masked_cells"), 1);
        assert_eq!(
            obs.metrics.counter("kmeans.iterations"),
            observed.iterations() as u64
        );
    }

    #[test]
    fn empty_cluster_repair_under_masking_keeps_k_groups() {
        // Provided seeds that collapse: all points near each other, two
        // seeds in the same spot force a repair eventually.
        let points = FeatureMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.2, 0.0],
            vec![10.0, 0.0],
        ]);
        let mut mask = FeatureMask::all_observed(4, 2);
        mask.set(3, 1, false);
        let r = kmeans_masked(
            &points,
            &mask,
            KmeansConfig::new(3),
            &Initializer::Provided(vec![0, 1, 2]),
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        let sizes = r.cluster_sizes();
        assert_eq!(sizes.len(), 3);
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    }
}
