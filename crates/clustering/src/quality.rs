//! Cluster quality metrics.
//!
//! The paper's headline accuracy metric is the **average group
//! interaction cost** (§2): the interaction cost of a group is the mean
//! pairwise cost between its members, and the network-wide figure is the
//! mean over groups. This module computes that plus standard clustering
//! diagnostics (within-cluster scatter, silhouette) used by the ablation
//! benches.
//!
//! The O(Σ|g|²) pairwise sums fan out across [`ecg_par`] workers with
//! the crate's standing determinism contract: each order-sensitive f64
//! chain (a group's pairwise sum, a point's silhouette) is computed
//! whole inside one work item, and the cross-item reduction folds the
//! returned values sequentially in input order — so every metric here
//! is bit-identical to its original sequential loop at any thread
//! count.

use crate::kmeans::sq_l2;
use ecg_coords::FeatureMatrix;

/// Euclidean pairwise cost over a [`FeatureMatrix`]: `cost(a, b)` is the
/// L2 distance between rows `a` and `b`. Plugs flat point storage
/// straight into the closure-based metrics in this module without
/// materializing per-pair vectors.
///
/// # Examples
///
/// ```
/// use ecg_clustering::{euclidean_cost, FeatureMatrix};
///
/// let m = FeatureMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
/// let cost = euclidean_cost(&m);
/// assert_eq!(cost(0, 1), 5.0);
/// ```
pub fn euclidean_cost(points: &FeatureMatrix) -> impl Fn(usize, usize) -> f64 + '_ {
    |a, b| sq_l2(points.row(a), points.row(b)).sqrt()
}

/// Group interaction cost of one group: the mean of `cost(a, b)` over all
/// unordered member pairs (§2's `GICost`).
///
/// A group with fewer than two members has no pairs; its interaction cost
/// is zero (its members never talk to a peer).
pub fn group_interaction_cost(members: &[usize], cost: impl Fn(usize, usize) -> f64) -> f64 {
    let n = members.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += cost(members[i], members[j]);
        }
    }
    sum / (n * (n - 1) / 2) as f64
}

/// Average group interaction cost over a set of groups — the paper's
/// clustering-accuracy metric ("the mean of the group interaction costs
/// of all groups within the edge cache network").
///
/// The per-group pairwise sums run on [`ecg_par`] workers (one group
/// per work item, its summation chain intact) and the outer mean folds
/// the per-group costs in group order, so the result is bit-identical
/// to the sequential computation at any thread count.
///
/// Returns `0.0` for an empty group set.
pub fn average_group_interaction_cost(
    groups: &[Vec<usize>],
    cost: impl Fn(usize, usize) -> f64 + Sync,
) -> f64 {
    if groups.is_empty() {
        return 0.0;
    }
    let per_group = ecg_par::par_map(groups.iter().collect(), |g: &Vec<usize>| {
        group_interaction_cost(g, &cost)
    });
    per_group.into_iter().sum::<f64>() / groups.len() as f64
}

/// Mean silhouette coefficient of a clustering under an arbitrary
/// dissimilarity, in `[-1, 1]`; higher is better.
///
/// Points in singleton clusters contribute a silhouette of zero (the
/// standard convention). Returns `0.0` when there are fewer than two
/// clusters or fewer than two points.
pub fn mean_silhouette(groups: &[Vec<usize>], cost: impl Fn(usize, usize) -> f64 + Sync) -> f64 {
    let total: usize = groups.iter().map(Vec::len).sum();
    if groups.len() < 2 || total < 2 {
        return 0.0;
    }
    // One work item per point, in (group, member) order. Each point's
    // O(total) silhouette runs whole inside its item; `None` marks the
    // points the sequential loop skipped (singletons, no finite `b`,
    // zero denominator), so the ordered fold below performs exactly the
    // same f64 additions in the same order as the original single loop.
    let pairs: Vec<(usize, usize)> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, group)| group.iter().map(move |&p| (gi, p)))
        .collect();
    let contributions: Vec<Vec<Option<f64>>> = ecg_par::par_chunk_map(pairs.len(), |range| {
        pairs[range]
            .iter()
            .map(|&(gi, p)| {
                let group = &groups[gi];
                if group.len() < 2 {
                    return None; // silhouette 0 for singletons
                }
                // a = mean intra-cluster dissimilarity.
                let a = group
                    .iter()
                    .filter(|&&q| q != p)
                    .map(|&q| cost(p, q))
                    .sum::<f64>()
                    / (group.len() - 1) as f64;
                // b = min over other clusters of mean dissimilarity.
                let mut b = f64::INFINITY;
                for (gj, other) in groups.iter().enumerate() {
                    if gj == gi || other.is_empty() {
                        continue;
                    }
                    let mean = other.iter().map(|&q| cost(p, q)).sum::<f64>() / other.len() as f64;
                    b = b.min(mean);
                }
                if b.is_finite() {
                    let denom = a.max(b);
                    if denom > 0.0 {
                        return Some((b - a) / denom);
                    }
                }
                None
            })
            .collect()
    });
    let mut sum = 0.0;
    for s in contributions.into_iter().flatten().flatten() {
        sum += s;
    }
    sum / total as f64
}

/// Size statistics of a group set: (min, mean, max) member counts.
///
/// Returns `(0, 0.0, 0)` for an empty group set.
pub fn group_size_stats(groups: &[Vec<usize>]) -> (usize, f64, usize) {
    if groups.is_empty() {
        return (0, 0.0, 0);
    }
    let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
    let min = *sizes.iter().min().expect("non-empty");
    let max = *sizes.iter().max().expect("non-empty");
    let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    (min, mean, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_cost(a: usize, b: usize) -> f64 {
        (a as f64 - b as f64).abs()
    }

    #[test]
    fn single_group_cost_is_mean_pairwise() {
        // Members 0, 2, 6 on a line: pairs (0,2)=2, (0,6)=6, (2,6)=4.
        let gic = group_interaction_cost(&[0, 2, 6], line_cost);
        assert!((gic - 4.0).abs() < 1e-12);
    }

    #[test]
    fn small_groups_cost_zero() {
        assert_eq!(group_interaction_cost(&[], line_cost), 0.0);
        assert_eq!(group_interaction_cost(&[3], line_cost), 0.0);
    }

    #[test]
    fn average_over_groups() {
        let groups = vec![vec![0, 2], vec![10, 16]];
        // Group costs 2 and 6 → average 4.
        let avg = average_group_interaction_cost(&groups, line_cost);
        assert!((avg - 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_of_no_groups_is_zero() {
        assert_eq!(average_group_interaction_cost(&[], line_cost), 0.0);
    }

    #[test]
    fn tight_clusters_beat_loose_ones() {
        // Points 0..4 and 100..104; correct split vs. mixed split.
        let good = vec![vec![0, 1, 2, 3], vec![100, 101, 102, 103]];
        let bad = vec![vec![0, 1, 102, 103], vec![2, 3, 100, 101]];
        assert!(
            average_group_interaction_cost(&good, line_cost)
                < average_group_interaction_cost(&bad, line_cost)
        );
    }

    #[test]
    fn silhouette_high_for_separated_clusters() {
        let groups = vec![vec![0, 1, 2], vec![100, 101, 102]];
        let s = mean_silhouette(&groups, line_cost);
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn silhouette_low_for_shuffled_clusters() {
        let groups = vec![vec![0, 100, 2], vec![1, 101, 102]];
        let s = mean_silhouette(&groups, line_cost);
        assert!(s < 0.5, "silhouette {s}");
    }

    #[test]
    fn silhouette_degenerate_cases() {
        assert_eq!(mean_silhouette(&[], line_cost), 0.0);
        assert_eq!(mean_silhouette(&[vec![1, 2, 3]], line_cost), 0.0);
        // Singletons contribute zero.
        let s = mean_silhouette(&[vec![0], vec![9]], line_cost);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn euclidean_cost_matches_l2() {
        let m = FeatureMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![3.0, 0.0]]);
        let cost = euclidean_cost(&m);
        assert_eq!(cost(0, 1), 5.0);
        assert_eq!(cost(0, 2), 3.0);
        assert_eq!(cost(1, 1), 0.0);
        // Symmetric, so the closure-based metrics behave.
        assert_eq!(cost(1, 2), cost(2, 1));
    }

    #[test]
    fn size_stats() {
        let groups = vec![vec![1], vec![2, 3], vec![4, 5, 6]];
        assert_eq!(group_size_stats(&groups), (1, 2.0, 3));
        assert_eq!(group_size_stats(&[]), (0, 0.0, 0));
    }
}
