//! K-means clustering with pluggable initialization.
//!
//! Both the SL and SDSL schemes cluster caches with K-means over feature
//! vectors (§3.3). The two schemes differ *only* in how the initial
//! cluster centers are drawn — uniformly for SL, inversely proportional
//! to server distance for SDSL — so the initializer is a first-class
//! parameter here (see [`Initializer`]).
//!
//! Points live in a contiguous row-major [`FeatureMatrix`]; full k-way
//! scans run through the cache-blocked kernel in [`crate::blocked`]
//! (lane-transposed center tiles, bit-identical to a scalar scan) so
//! center rows stay in L1/L2 and the inner loop auto-vectorizes across
//! centers — or, at large k, through the KD-tree over centers in
//! [`crate::tree`], whose branch-and-bound query returns the identical
//! triple while visiting only a few tiles (see [`AssignMode`]). The
//! Lloyd loop uses
//! Hamerly-style upper/lower distance bounds ("Making k-means even
//! faster", SDM 2010) to skip the k-way scan for points whose assignment
//! provably cannot change; every surviving candidate is settled with
//! exact distances, so [`kmeans`] produces assignments, centers,
//! iteration counts, and convergence flags identical to the retained
//! naive implementation [`kmeans_reference`]. The two prunings compose:
//! the tree is consulted only for points whose Hamerly bound is
//! violated, which is where the large-K win lives.
//!
//! The O(n·k·d) assignment scans (the initial pass and the
//! per-iteration re-scan) fan out across [`ecg_par`] workers in fixed
//! chunks. Each point's scan reads shared immutable centers and writes
//! only its own assignment/bound slots, and the per-chunk
//! prune/tighten/scan counters are integers reduced in chunk order, so
//! the clustering is **bit-identical at any thread count**. The
//! f64-order-sensitive steps — center mean accumulation and
//! empty-cluster repair — deliberately stay sequential in point-index
//! order to preserve exact equality with [`kmeans_reference`].

use crate::init::Initializer;
use crate::tree::{AssignMode, CenterScanner};
use ecg_coords::FeatureMatrix;
use ecg_obs::Obs;
use rand::Rng;

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics (in debug builds) if the dimensions differ.
#[inline]
pub(crate) fn sq_l2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Configuration of a K-means run.
///
/// # Examples
///
/// ```
/// use ecg_clustering::KmeansConfig;
///
/// let cfg = KmeansConfig::new(3).max_iterations(50).reassignment_threshold(1);
/// assert_eq!(cfg.k(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansConfig {
    k: usize,
    max_iterations: usize,
    reassignment_threshold: usize,
    assign: AssignMode,
}

impl KmeansConfig {
    /// Creates a configuration for `k` clusters with the defaults the
    /// experiments use: at most 100 iterations, terminating once an
    /// iteration reassigns no points (the paper's "number of caches
    /// reassigned becomes minimal" condition with minimal = 0).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-means needs at least one cluster");
        KmeansConfig {
            k,
            max_iterations: 100,
            reassignment_threshold: 0,
            assign: AssignMode::default(),
        }
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the termination threshold: the loop stops as soon as an
    /// iteration reassigns at most this many points.
    pub fn reassignment_threshold(mut self, threshold: usize) -> Self {
        self.reassignment_threshold = threshold;
        self
    }

    /// Selects the nearest-center engine for the assignment scans:
    /// the flat blocked kernel, the KD-tree over centers, or (the
    /// default) automatic selection on k. All modes produce
    /// bit-identical clusterings — see [`crate::tree`].
    pub fn assign(mut self, mode: AssignMode) -> Self {
        self.assign = mode;
        self
    }

    /// Number of clusters `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured nearest-center engine.
    pub fn assign_mode(&self) -> AssignMode {
        self.assign
    }

    /// The iteration cap.
    pub fn iteration_cap(&self) -> usize {
        self.max_iterations
    }

    /// The reassignment termination threshold.
    pub fn threshold(&self) -> usize {
        self.reassignment_threshold
    }
}

/// Result of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<usize>,
    centers: FeatureMatrix,
    iterations: usize,
    converged: bool,
}

impl Clustering {
    /// Assembles a clustering from raw parts (used by the size-capped
    /// variant in [`crate::balanced`] and the mini-batch variant in
    /// [`crate::minibatch`]).
    pub(crate) fn from_parts(
        assignments: Vec<usize>,
        centers: FeatureMatrix,
        iterations: usize,
        converged: bool,
    ) -> Self {
        Clustering {
            assignments,
            centers,
            iterations,
            converged,
        }
    }

    /// Cluster index of each input point, in input order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Final cluster centers (mean vectors), one matrix row per cluster.
    pub fn centers(&self) -> &FeatureMatrix {
        &self.centers
    }

    /// Iterations of the assign/update loop that ran.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the reassignment threshold was reached before the
    /// iteration cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Groups the point indices by cluster: entry `c` lists the points
    /// assigned to cluster `c`, ascending.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k()];
        for (point, &cluster) in self.assignments.iter().enumerate() {
            groups[cluster].push(point);
        }
        groups
    }

    /// Number of points in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &c in &self.assignments {
            sizes[c] += 1;
        }
        sizes
    }

    /// Within-cluster sum of squared distances to centers — the K-means
    /// objective value for this clustering.
    pub fn inertia(&self, points: &FeatureMatrix) -> f64 {
        self.assignments
            .iter()
            .zip(points.iter_rows())
            .map(|(&c, p)| sq_l2(p, self.centers.row(c)))
            .sum()
    }
}

/// Error returned by [`kmeans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KmeansError {
    /// More clusters than points were requested.
    TooFewPoints {
        /// Points provided.
        points: usize,
        /// Clusters requested.
        k: usize,
    },
    /// The initializer returned the wrong number of (or duplicate)
    /// centers.
    BadInitializer(String),
}

impl std::fmt::Display for KmeansError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmeansError::TooFewPoints { points, k } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
            KmeansError::BadInitializer(msg) => write!(f, "initializer misbehaved: {msg}"),
        }
    }
}

impl std::error::Error for KmeansError {}

/// Runs K-means over `points`.
///
/// 1. **Initialization** — `initializer` picks `k` distinct seed points;
///    every point is assigned to its nearest seed.
/// 2. **Iteration** — recompute each cluster's mean vector, then
///    re-assign every point to its nearest center; repeat until an
///    iteration reassigns no more than the configured threshold or the
///    iteration cap is reached.
/// 3. **Empty-cluster repair** — a cluster left empty by re-assignment is
///    re-seeded on the point currently farthest from its own center, so
///    exactly `k` non-empty groups come out.
///
/// The re-assignment phase is accelerated with Hamerly-style distance
/// bounds; the pruning is strictly conservative (a point is skipped only
/// when its current center is the *unique* strict nearest), so the
/// result is identical to [`kmeans_reference`] in every field.
///
/// # Errors
///
/// Returns [`KmeansError`] if there are fewer points than clusters or
/// the initializer returns a bad seed set.
///
/// # Examples
///
/// ```
/// use ecg_clustering::{kmeans, FeatureMatrix, Initializer, KmeansConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let points = FeatureMatrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.1, 0.0], // cluster A
///     vec![9.0, 9.0], vec![9.1, 9.0], // cluster B
/// ]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let result = kmeans(
///     &points,
///     KmeansConfig::new(2),
///     &Initializer::RandomRepresentative,
///     &mut rng,
/// )?;
/// let a = result.assignments();
/// assert_eq!(a[0], a[1]);
/// assert_eq!(a[2], a[3]);
/// assert_ne!(a[0], a[2]);
/// # Ok::<(), ecg_clustering::KmeansError>(())
/// ```
pub fn kmeans<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    config: KmeansConfig,
    initializer: &Initializer,
    rng: &mut R,
) -> Result<Clustering, KmeansError> {
    kmeans_observed(points, config, initializer, rng, None)
}

/// Like [`kmeans`], but records per-iteration convergence stats into an
/// observability bundle when one is supplied: `kmeans.*` counters
/// (iterations, reassignments, Hamerly-pruned points, bound-tightened
/// points, exact scans), a `kmeans` phase span whose work is the
/// iteration count, and one `kmeans`/`iter` trace event per iteration
/// keyed by iteration number (never wall clock). With `obs = None` this
/// is exactly [`kmeans`]; instrumentation never draws from the RNG, so
/// the clustering is identical either way.
pub fn kmeans_observed<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    config: KmeansConfig,
    initializer: &Initializer,
    rng: &mut R,
    mut obs: Option<&mut Obs>,
) -> Result<Clustering, KmeansError> {
    let n = points.len();
    let k = config.k;
    if n < k {
        return Err(KmeansError::TooFewPoints { points: n, k });
    }

    // Initialization phase. The initializer is the only RNG consumer, so
    // the stream stays aligned with `kmeans_reference`.
    let seeds = initializer.select(points, k, rng)?;
    let mut centers = FeatureMatrix::with_capacity(k, points.dim());
    for &i in &seeds {
        centers.push_row(points.row(i));
    }

    // Centers staged on the configured nearest-center engine: the
    // blocked kernel ([`crate::blocked`]) or the KD-tree over centers
    // ([`crate::tree`]). Both return bit-identical (best, d², second
    // d²) triples, so the engine choice moves wall-clock only.
    let mut scanner = CenterScanner::stage(&centers, config.assign);

    let mut assignments = vec![0usize; n];
    // Hamerly bounds, in the metric (sqrt) domain where the triangle
    // inequality holds: `upper[i] >= d(i, center[assignments[i]])` and
    // `lower[i] <= min over other centers of d(i, center)`.
    let mut upper = vec![0.0f64; n];
    let mut lower = vec![0.0f64; n];
    ecg_par::par_map(
        scan_chunks(&mut assignments, &mut upper, &mut lower),
        |(start, a_chunk, u_chunk, l_chunk)| {
            let cells = a_chunk.iter_mut().zip(u_chunk.iter_mut().zip(l_chunk));
            for (off, (a, (u, l))) in cells.enumerate() {
                let (best, best_d2, second_d2) = scanner.scan(points.row(start + off));
                *a = best;
                *u = best_d2.sqrt();
                *l = second_d2.sqrt();
            }
        },
    );

    // Iterative phase.
    let mut iterations = 0;
    let mut converged = false;
    let mut previous_centers = centers.clone();
    let mut movement = vec![0.0f64; k];
    let mut stolen: Vec<usize> = Vec::new();
    let mut update = CenterUpdateScratch::new(k, points.dim());
    while iterations < config.max_iterations {
        iterations += 1;
        previous_centers.clone_from(&centers);
        update.update_centers(points, &assignments, &mut centers);
        repair_empty_clusters(points, &mut assignments, &mut centers, &mut stolen);
        scanner.refill(&centers);

        // How far each center travelled this iteration (including any
        // repair re-seeding); by the triangle inequality a point's
        // distance to center `c` changed by at most `movement[c]`. The
        // lower bound covers centers *other than* the point's own, so a
        // point assigned to the fastest-moving center only needs the
        // second-fastest movement subtracted — without this, one
        // fast-moving center (a blob being split) collapses every
        // point's lower bound and disables pruning globally.
        let (mut max_move, mut second_move, mut max_mover) = (0.0f64, 0.0f64, 0usize);
        for (c, m) in movement.iter_mut().enumerate() {
            *m = sq_l2(previous_centers.row(c), centers.row(c)).sqrt();
            if *m > max_move {
                second_move = max_move;
                max_move = *m;
                max_mover = c;
            } else if *m > second_move {
                second_move = *m;
            }
        }
        for i in 0..n {
            let a = assignments[i];
            upper[i] += movement[a];
            lower[i] -= if a == max_mover {
                second_move
            } else {
                max_move
            };
        }
        // Points the repair moved were re-assigned outside the scan;
        // their bounds no longer describe their cluster. Force an exact
        // re-scan next phase.
        for &i in &stolen {
            upper[i] = f64::INFINITY;
            lower[i] = f64::NEG_INFINITY;
        }

        // Per-point scans are independent (shared immutable centers,
        // per-point bound slots) and the counters are integers, so the
        // chunked fan-out below reproduces the sequential loop exactly.
        let partials = ecg_par::par_map(
            scan_chunks(&mut assignments, &mut upper, &mut lower),
            |(start, a_chunk, u_chunk, l_chunk)| {
                let mut counts = ScanCounts::default();
                let cells = a_chunk.iter_mut().zip(u_chunk.iter_mut().zip(l_chunk));
                for (off, (a, (u, l))) in cells.enumerate() {
                    // Prune: `upper < lower` makes the current center the
                    // unique strict nearest, so the naive scan would keep
                    // it. Ties never prune (the inequality is strict), so
                    // tie-breaking always falls through to the exact scan
                    // below.
                    if *u < *l {
                        counts.pruned += 1;
                        continue;
                    }
                    let p = points.row(start + off);
                    // Tighten the upper bound with one exact distance and
                    // retest before paying for the full k-way scan.
                    let d_a = sq_l2(p, centers.row(*a)).sqrt();
                    *u = d_a;
                    if d_a < *l {
                        counts.tightened += 1;
                        continue;
                    }
                    counts.exact_scans += 1;
                    let (best, best_d2, second_d2) = scanner.scan(p);
                    *u = best_d2.sqrt();
                    *l = second_d2.sqrt();
                    if best != *a {
                        *a = best;
                        counts.reassigned += 1;
                    }
                }
                counts
            },
        );
        // Chunk-order reduction of the per-chunk tallies.
        let ScanCounts {
            reassigned,
            pruned,
            tightened,
            exact_scans,
        } = partials
            .into_iter()
            .fold(ScanCounts::default(), |s, c| s + c);
        if let Some(o) = obs.as_deref_mut() {
            o.metrics.inc("kmeans.iterations");
            o.metrics.add("kmeans.reassigned", reassigned as u64);
            o.metrics.add("kmeans.pruned", pruned as u64);
            o.metrics.add("kmeans.tightened", tightened as u64);
            o.metrics.add("kmeans.exact_scans", exact_scans as u64);
            o.trace.push(
                iterations as f64,
                "kmeans",
                "iter",
                vec![
                    ("reassigned", reassigned.into()),
                    ("pruned", pruned.into()),
                    ("tightened", tightened.into()),
                    ("exact_scans", exact_scans.into()),
                    ("max_center_move", max_move.into()),
                ],
            );
        }
        if reassigned <= config.reassignment_threshold {
            converged = true;
            break;
        }
    }

    // Termination phase: make centers consistent with final assignments
    // and guarantee no empty groups.
    update.update_centers(points, &assignments, &mut centers);
    repair_empty_clusters(points, &mut assignments, &mut centers, &mut stolen);

    if let Some(o) = obs {
        o.metrics.inc("kmeans.runs");
        if converged {
            o.metrics.inc("kmeans.converged");
        }
        let mut span = o.phases.span("kmeans");
        span.add_work(iterations as f64);
    }

    Ok(Clustering {
        assignments,
        centers,
        iterations,
        converged,
    })
}

/// The pre-optimization naive K-means, retained verbatim as the
/// correctness oracle for [`kmeans`] and as the baseline the hot-path
/// benches compare against: ragged `Vec<Vec<f64>>` rows and a full k-way
/// distance scan for every point in every iteration.
///
/// Consumes the RNG identically to [`kmeans`] (only the initializer
/// draws), so for the same inputs and seed the two return equal
/// [`Clustering`] values — see the equivalence property test.
///
/// # Errors
///
/// Exactly as [`kmeans`].
pub fn kmeans_reference<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    config: KmeansConfig,
    initializer: &Initializer,
    rng: &mut R,
) -> Result<Clustering, KmeansError> {
    let n = points.len();
    let k = config.k;
    if n < k {
        return Err(KmeansError::TooFewPoints { points: n, k });
    }
    let seeds = initializer.select(points, k, rng)?;
    let rows = points.to_rows();

    let mut centers: Vec<Vec<f64>> = seeds.iter().map(|&i| rows[i].clone()).collect();
    let mut assignments = vec![0usize; n];
    for (i, p) in rows.iter().enumerate() {
        assignments[i] = nearest_center_rows(p, &centers);
    }

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        update_centers_rows(&rows, &assignments, &mut centers);
        repair_empty_clusters_rows(&rows, &mut assignments, &mut centers);

        let mut reassigned = 0usize;
        for (i, p) in rows.iter().enumerate() {
            let best = nearest_center_rows(p, &centers);
            if best != assignments[i] {
                assignments[i] = best;
                reassigned += 1;
            }
        }
        if reassigned <= config.reassignment_threshold {
            converged = true;
            break;
        }
    }

    update_centers_rows(&rows, &assignments, &mut centers);
    repair_empty_clusters_rows(&rows, &mut assignments, &mut centers);

    Ok(Clustering {
        assignments,
        centers: FeatureMatrix::from_rows(&centers),
        iterations,
        converged,
    })
}

/// Per-chunk tallies of the Hamerly scan, reduced in chunk order.
#[derive(Debug, Clone, Copy, Default)]
struct ScanCounts {
    reassigned: usize,
    pruned: usize,
    tightened: usize,
    exact_scans: usize,
}

impl std::ops::Add for ScanCounts {
    type Output = ScanCounts;

    fn add(self, other: ScanCounts) -> ScanCounts {
        ScanCounts {
            reassigned: self.reassigned + other.reassigned,
            pruned: self.pruned + other.pruned,
            tightened: self.tightened + other.tightened,
            exact_scans: self.exact_scans + other.exact_scans,
        }
    }
}

/// One parallel-scan work item: `(start index, assignments, upper
/// bounds, lower bounds)` over one fixed chunk of points.
type ScanChunk<'s> = (usize, &'s mut [usize], &'s mut [f64], &'s mut [f64]);

/// Splits the assignment/bound arrays into matching fixed chunks
/// (`(start index, assignments, upper, lower)` work items) for the
/// parallel scans. Boundaries come from [`ecg_par::chunk_ranges`], so
/// they depend only on `n`.
fn scan_chunks<'s>(
    assignments: &'s mut [usize],
    upper: &'s mut [f64],
    lower: &'s mut [f64],
) -> Vec<ScanChunk<'s>> {
    let chunk = ecg_par::DEFAULT_CHUNK;
    let ranges = ecg_par::chunk_ranges(assignments.len());
    ranges
        .into_iter()
        .zip(assignments.chunks_mut(chunk))
        .zip(upper.chunks_mut(chunk).zip(lower.chunks_mut(chunk)))
        .map(|((r, a), (u, l))| (r.start, a, u, l))
        .collect()
}

/// Reusable buffers for the center update so the Lloyd loop allocates
/// nothing per iteration.
struct CenterUpdateScratch {
    sums: Vec<f64>,
    counts: Vec<usize>,
    dim: usize,
}

impl CenterUpdateScratch {
    fn new(k: usize, dim: usize) -> Self {
        CenterUpdateScratch {
            sums: vec![0.0; k * dim],
            counts: vec![0; k],
            dim,
        }
    }

    /// Recomputes each center as the mean of its assigned points,
    /// accumulating in point-index order so the floating-point results
    /// match the reference implementation bit for bit. Centers of empty
    /// clusters are left untouched (repair handles them).
    fn update_centers(
        &mut self,
        points: &FeatureMatrix,
        assignments: &[usize],
        centers: &mut FeatureMatrix,
    ) {
        let dim = self.dim;
        self.sums.fill(0.0);
        self.counts.fill(0);
        for (p, &c) in points.iter_rows().zip(assignments) {
            self.counts[c] += 1;
            for (s, v) in self.sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..centers.len() {
            if self.counts[c] > 0 {
                let inv = self.counts[c] as f64;
                for (center_v, sum_v) in centers
                    .row_mut(c)
                    .iter_mut()
                    .zip(&self.sums[c * dim..(c + 1) * dim])
                {
                    *center_v = sum_v / inv;
                }
            }
        }
    }
}

/// Re-seeds every empty cluster on the point farthest from its current
/// center, stealing it from its (necessarily non-empty) donor cluster.
/// The indices of stolen points are collected into `stolen` (cleared
/// first) so the caller can invalidate their distance bounds. Shared
/// with the mini-batch variant ([`crate::minibatch`]), which has the
/// same no-empty-groups obligation.
pub(crate) fn repair_empty_clusters(
    points: &FeatureMatrix,
    assignments: &mut [usize],
    centers: &mut FeatureMatrix,
    stolen: &mut Vec<usize>,
) {
    let k = centers.len();
    stolen.clear();
    loop {
        let mut counts = vec![0usize; k];
        for &c in assignments.iter() {
            counts[c] += 1;
        }
        let Some(empty) = counts.iter().position(|&c| c == 0) else {
            return;
        };
        // Farthest point from its own center, from a cluster with > 1
        // members so the donor does not become empty itself.
        let mut donor: Option<(usize, f64)> = None;
        for (i, p) in points.iter_rows().enumerate() {
            let c = assignments[i];
            if counts[c] <= 1 {
                continue;
            }
            let d = sq_l2(p, centers.row(c));
            if donor.is_none_or(|(_, bd)| d > bd) {
                donor = Some((i, d));
            }
        }
        let Some((idx, _)) = donor else {
            // All clusters are singletons or empty and nothing can move;
            // only possible when n < k, which the entry point rejects.
            return;
        };
        assignments[idx] = empty;
        let row = points.row(idx).to_vec();
        centers.set_row(empty, &row);
        stolen.push(idx);
    }
}

/// Index of the center nearest to `p` (ties break to the lower index) —
/// reference-path scan over ragged rows.
fn nearest_center_rows(p: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d = sq_l2(p, center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

fn update_centers_rows(points: &[Vec<f64>], assignments: &[usize], centers: &mut [Vec<f64>]) {
    let dim = points[0].len();
    let k = centers.len();
    let mut sums = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (p, &c) in points.iter().zip(assignments) {
        counts[c] += 1;
        for (s, v) in sums[c].iter_mut().zip(p) {
            *s += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            for (center_v, sum_v) in centers[c].iter_mut().zip(&sums[c]) {
                *center_v = sum_v / counts[c] as f64;
            }
        }
    }
}

fn repair_empty_clusters_rows(
    points: &[Vec<f64>],
    assignments: &mut [usize],
    centers: &mut [Vec<f64>],
) {
    let k = centers.len();
    loop {
        let mut counts = vec![0usize; k];
        for &c in assignments.iter() {
            counts[c] += 1;
        }
        let Some(empty) = counts.iter().position(|&c| c == 0) else {
            return;
        };
        let mut donor: Option<(usize, f64)> = None;
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            if counts[c] <= 1 {
                continue;
            }
            let d = sq_l2(p, &centers[c]);
            if donor.is_none_or(|(_, bd)| d > bd) {
                donor = Some((i, d));
            }
        }
        let Some((idx, _)) = donor else {
            return;
        };
        assignments[idx] = empty;
        centers[empty] = points[idx].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs() -> FeatureMatrix {
        let mut pts = FeatureMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)] {
            for d in 0..5 {
                pts.push_row(&[cx + d as f64 * 0.1, cy + d as f64 * 0.1]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = three_blobs();
        let mut rng = StdRng::seed_from_u64(0);
        let r = kmeans(
            &pts,
            KmeansConfig::new(3),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        assert!(r.converged());
        // Each blob of five lands in one cluster.
        for blob in 0..3 {
            let first = r.assignments()[blob * 5];
            for i in 0..5 {
                assert_eq!(r.assignments()[blob * 5 + i], first);
            }
        }
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5, 5]);
    }

    #[test]
    fn every_cluster_is_non_empty() {
        // Adversarial: many identical points plus one outlier, k = 4.
        let mut pts = FeatureMatrix::new(2);
        for _ in 0..20 {
            pts.push_row(&[0.0, 0.0]);
        }
        pts.push_row(&[100.0, 100.0]);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = kmeans(
                &pts,
                KmeansConfig::new(4),
                &Initializer::RandomRepresentative,
                &mut rng,
            )
            .unwrap();
            assert!(
                r.cluster_sizes().iter().all(|&s| s > 0),
                "seed {seed}: {:?}",
                r.cluster_sizes()
            );
        }
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let pts =
            FeatureMatrix::from_rows(&(0..6).map(|i| vec![i as f64 * 10.0]).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(1);
        let r = kmeans(
            &pts,
            KmeansConfig::new(6),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1; 6]);
    }

    #[test]
    fn k_one_groups_everything() {
        let pts = three_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let r = kmeans(
            &pts,
            KmeansConfig::new(1),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.cluster_sizes(), vec![pts.len()]);
        // Center is the global mean.
        let mean_x = pts.iter_rows().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        assert!((r.centers()[0][0] - mean_x).abs() < 1e-9);
    }

    #[test]
    fn too_few_points_is_an_error() {
        let pts = FeatureMatrix::from_rows(&[vec![1.0]]);
        let mut rng = StdRng::seed_from_u64(1);
        let err = kmeans(
            &pts,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, KmeansError::TooFewPoints { points: 1, k: 2 });
        assert!(err.to_string().contains("2 clusters"));
    }

    #[test]
    fn inertia_never_increases_with_more_clusters() {
        let pts = three_blobs();
        let best_inertia = |k: usize| -> f64 {
            (0..5)
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    kmeans(
                        &pts,
                        KmeansConfig::new(k),
                        &Initializer::RandomRepresentative,
                        &mut rng,
                    )
                    .unwrap()
                    .inertia(&pts)
                })
                .fold(f64::INFINITY, f64::min)
        };
        assert!(best_inertia(3) <= best_inertia(2) + 1e-9);
        assert!(best_inertia(2) <= best_inertia(1) + 1e-9);
    }

    #[test]
    fn provided_initializer_is_deterministic() {
        let pts = three_blobs();
        let run = || {
            let mut rng = StdRng::seed_from_u64(0);
            kmeans(
                &pts,
                KmeansConfig::new(3),
                &Initializer::Provided(vec![0, 5, 10]),
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clusters_partition_the_points() {
        let pts = three_blobs();
        let mut rng = StdRng::seed_from_u64(9);
        let r = kmeans(
            &pts,
            KmeansConfig::new(3),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        let mut all: Vec<usize> = r.clusters().into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..pts.len()).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn pruned_run_equals_reference_exactly() {
        // Same seeds, a spread of (n, k) shapes including duplicate
        // points (exact distance ties) and k = n: every field of the
        // result must match the naive path bit for bit.
        let mut gen = StdRng::seed_from_u64(0xBEEF);
        for &(n, k, dim) in &[
            (12usize, 3usize, 2usize),
            (40, 7, 5),
            (25, 25, 3),
            (30, 2, 1),
        ] {
            let mut pts = FeatureMatrix::new(dim);
            for i in 0..n {
                use rand::Rng;
                // Every fourth point duplicates the previous one to
                // exercise exact distance ties.
                if i % 4 == 3 {
                    let prev = pts.row(i - 1).to_vec();
                    pts.push_row(&prev);
                } else {
                    let row: Vec<f64> = (0..dim).map(|_| gen.gen_range(0.0..100.0)).collect();
                    pts.push_row(&row);
                }
            }
            for seed in 0..10u64 {
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let fast = kmeans(
                    &pts,
                    KmeansConfig::new(k),
                    &Initializer::RandomRepresentative,
                    &mut rng_a,
                )
                .unwrap();
                let slow = kmeans_reference(
                    &pts,
                    KmeansConfig::new(k),
                    &Initializer::RandomRepresentative,
                    &mut rng_b,
                )
                .unwrap();
                assert_eq!(fast, slow, "n={n} k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn pruned_run_equals_reference_with_duplicates_and_repair() {
        // Heavy duplication forces empty-cluster repair in most
        // iterations — the hardest case for bound bookkeeping.
        let mut pts = FeatureMatrix::new(2);
        for _ in 0..18 {
            pts.push_row(&[1.0, 1.0]);
        }
        pts.push_row(&[50.0, 0.0]);
        pts.push_row(&[0.0, 50.0]);
        for seed in 0..20u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let fast = kmeans(
                &pts,
                KmeansConfig::new(5),
                &Initializer::RandomRepresentative,
                &mut rng_a,
            )
            .unwrap();
            let slow = kmeans_reference(
                &pts,
                KmeansConfig::new(5),
                &Initializer::RandomRepresentative,
                &mut rng_b,
            )
            .unwrap();
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_k_rejected() {
        let _ = KmeansConfig::new(0);
    }

    #[test]
    fn observed_run_matches_plain_and_accounts_every_point() {
        let pts = three_blobs();
        let plain = {
            let mut rng = StdRng::seed_from_u64(3);
            kmeans(
                &pts,
                KmeansConfig::new(3),
                &Initializer::RandomRepresentative,
                &mut rng,
            )
            .unwrap()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut obs = Obs::new();
        let observed = kmeans_observed(
            &pts,
            KmeansConfig::new(3),
            &Initializer::RandomRepresentative,
            &mut rng,
            Some(&mut obs),
        )
        .unwrap();
        // Identical RNG consumption: same clustering in every field.
        assert_eq!(plain, observed);
        let iters = obs.metrics.counter("kmeans.iterations");
        assert_eq!(iters, observed.iterations() as u64);
        assert_eq!(obs.metrics.counter("kmeans.runs"), 1);
        assert_eq!(obs.metrics.counter("kmeans.converged"), 1);
        // Every point is pruned, tightened, or scanned each iteration.
        let handled = obs.metrics.counter("kmeans.pruned")
            + obs.metrics.counter("kmeans.tightened")
            + obs.metrics.counter("kmeans.exact_scans");
        assert_eq!(handled, iters * pts.len() as u64);
        // One trace event per iteration, keyed by iteration number.
        assert_eq!(obs.trace.len(), iters as usize);
        assert_eq!(obs.phases.roots()[0].work(), iters as f64);
    }
}
