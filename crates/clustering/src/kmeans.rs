//! K-means clustering with pluggable initialization.
//!
//! Both the SL and SDSL schemes cluster caches with K-means over feature
//! vectors (§3.3). The two schemes differ *only* in how the initial
//! cluster centers are drawn — uniformly for SL, inversely proportional
//! to server distance for SDSL — so the initializer is a first-class
//! parameter here (see [`Initializer`]).
//!
//! Points are dense `Vec<f64>` rows; feature vectors and GNP coordinates
//! both convert to this representation trivially.

use crate::init::Initializer;
use rand::Rng;

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics (in debug builds) if the dimensions differ.
#[inline]
pub(crate) fn sq_l2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Configuration of a K-means run.
///
/// # Examples
///
/// ```
/// use ecg_clustering::KmeansConfig;
///
/// let cfg = KmeansConfig::new(3).max_iterations(50).reassignment_threshold(1);
/// assert_eq!(cfg.k(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansConfig {
    k: usize,
    max_iterations: usize,
    reassignment_threshold: usize,
}

impl KmeansConfig {
    /// Creates a configuration for `k` clusters with the defaults the
    /// experiments use: at most 100 iterations, terminating once an
    /// iteration reassigns no points (the paper's "number of caches
    /// reassigned becomes minimal" condition with minimal = 0).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-means needs at least one cluster");
        KmeansConfig {
            k,
            max_iterations: 100,
            reassignment_threshold: 0,
        }
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the termination threshold: the loop stops as soon as an
    /// iteration reassigns at most this many points.
    pub fn reassignment_threshold(mut self, threshold: usize) -> Self {
        self.reassignment_threshold = threshold;
        self
    }

    /// Number of clusters `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The iteration cap.
    pub fn iteration_cap(&self) -> usize {
        self.max_iterations
    }

    /// The reassignment termination threshold.
    pub fn threshold(&self) -> usize {
        self.reassignment_threshold
    }
}

/// Result of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<usize>,
    centers: Vec<Vec<f64>>,
    iterations: usize,
    converged: bool,
}

impl Clustering {
    /// Assembles a clustering from raw parts (used by the size-capped
    /// variant in [`crate::balanced`]).
    pub(crate) fn from_parts(
        assignments: Vec<usize>,
        centers: Vec<Vec<f64>>,
        iterations: usize,
        converged: bool,
    ) -> Self {
        Clustering {
            assignments,
            centers,
            iterations,
            converged,
        }
    }

    /// Cluster index of each input point, in input order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Final cluster centers (mean vectors).
    pub fn centers(&self) -> &[Vec<f64>] {
        &self.centers
    }

    /// Iterations of the assign/update loop that ran.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the reassignment threshold was reached before the
    /// iteration cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Groups the point indices by cluster: entry `c` lists the points
    /// assigned to cluster `c`, ascending.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k()];
        for (point, &cluster) in self.assignments.iter().enumerate() {
            groups[cluster].push(point);
        }
        groups
    }

    /// Number of points in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &c in &self.assignments {
            sizes[c] += 1;
        }
        sizes
    }

    /// Within-cluster sum of squared distances to centers — the K-means
    /// objective value for this clustering.
    pub fn inertia(&self, points: &[Vec<f64>]) -> f64 {
        self.assignments
            .iter()
            .zip(points)
            .map(|(&c, p)| sq_l2(p, &self.centers[c]))
            .sum()
    }
}

/// Error returned by [`kmeans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KmeansError {
    /// More clusters than points were requested.
    TooFewPoints {
        /// Points provided.
        points: usize,
        /// Clusters requested.
        k: usize,
    },
    /// Points do not all share one dimension.
    DimensionMismatch,
    /// The initializer returned the wrong number of (or duplicate)
    /// centers.
    BadInitializer(String),
}

impl std::fmt::Display for KmeansError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmeansError::TooFewPoints { points, k } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
            KmeansError::DimensionMismatch => {
                write!(f, "points must all have the same dimension")
            }
            KmeansError::BadInitializer(msg) => write!(f, "initializer misbehaved: {msg}"),
        }
    }
}

impl std::error::Error for KmeansError {}

/// Runs K-means over `points`.
///
/// 1. **Initialization** — `initializer` picks `k` distinct seed points;
///    every point is assigned to its nearest seed.
/// 2. **Iteration** — recompute each cluster's mean vector, then
///    re-assign every point to its nearest center; repeat until an
///    iteration reassigns no more than the configured threshold or the
///    iteration cap is reached.
/// 3. **Empty-cluster repair** — a cluster left empty by re-assignment is
///    re-seeded on the point currently farthest from its own center, so
///    exactly `k` non-empty groups come out.
///
/// # Errors
///
/// Returns [`KmeansError`] if there are fewer points than clusters, the
/// point dimensions disagree, or the initializer returns a bad seed set.
///
/// # Examples
///
/// ```
/// use ecg_clustering::{kmeans, Initializer, KmeansConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let points = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], // cluster A
///     vec![9.0, 9.0], vec![9.1, 9.0], // cluster B
/// ];
/// let mut rng = StdRng::seed_from_u64(1);
/// let result = kmeans(
///     &points,
///     KmeansConfig::new(2),
///     &Initializer::RandomRepresentative,
///     &mut rng,
/// )?;
/// let a = result.assignments();
/// assert_eq!(a[0], a[1]);
/// assert_eq!(a[2], a[3]);
/// assert_ne!(a[0], a[2]);
/// # Ok::<(), ecg_clustering::KmeansError>(())
/// ```
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    config: KmeansConfig,
    initializer: &Initializer,
    rng: &mut R,
) -> Result<Clustering, KmeansError> {
    let n = points.len();
    let k = config.k;
    if n < k {
        return Err(KmeansError::TooFewPoints { points: n, k });
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(KmeansError::DimensionMismatch);
    }

    // Initialization phase.
    let seeds = initializer.select(points, k, rng)?;
    let mut centers: Vec<Vec<f64>> = seeds.iter().map(|&i| points[i].clone()).collect();
    let mut assignments = vec![0usize; n];
    for (i, p) in points.iter().enumerate() {
        assignments[i] = nearest_center(p, &centers);
    }

    // Iterative phase.
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        update_centers(points, &assignments, &mut centers);
        repair_empty_clusters(points, &mut assignments, &mut centers);

        let mut reassigned = 0usize;
        for (i, p) in points.iter().enumerate() {
            let best = nearest_center(p, &centers);
            if best != assignments[i] {
                assignments[i] = best;
                reassigned += 1;
            }
        }
        if reassigned <= config.reassignment_threshold {
            converged = true;
            break;
        }
    }

    // Termination phase: make centers consistent with final assignments
    // and guarantee no empty groups.
    update_centers(points, &assignments, &mut centers);
    repair_empty_clusters(points, &mut assignments, &mut centers);

    Ok(Clustering {
        assignments,
        centers,
        iterations,
        converged,
    })
}

/// Index of the center nearest to `p` (ties break to the lower index).
fn nearest_center(p: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d = sq_l2(p, center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Recomputes each center as the mean of its assigned points. Centers of
/// empty clusters are left untouched (repair handles them).
fn update_centers(points: &[Vec<f64>], assignments: &[usize], centers: &mut [Vec<f64>]) {
    let dim = points[0].len();
    let k = centers.len();
    let mut sums = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (p, &c) in points.iter().zip(assignments) {
        counts[c] += 1;
        for (s, v) in sums[c].iter_mut().zip(p) {
            *s += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            for (center_v, sum_v) in centers[c].iter_mut().zip(&sums[c]) {
                *center_v = sum_v / counts[c] as f64;
            }
        }
    }
}

/// Re-seeds every empty cluster on the point farthest from its current
/// center, stealing it from its (necessarily non-empty) donor cluster.
fn repair_empty_clusters(points: &[Vec<f64>], assignments: &mut [usize], centers: &mut [Vec<f64>]) {
    let k = centers.len();
    loop {
        let mut counts = vec![0usize; k];
        for &c in assignments.iter() {
            counts[c] += 1;
        }
        let Some(empty) = counts.iter().position(|&c| c == 0) else {
            return;
        };
        // Farthest point from its own center, from a cluster with > 1
        // members so the donor does not become empty itself.
        let mut donor: Option<(usize, f64)> = None;
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            if counts[c] <= 1 {
                continue;
            }
            let d = sq_l2(p, &centers[c]);
            if donor.is_none_or(|(_, bd)| d > bd) {
                donor = Some((i, d));
            }
        }
        let Some((idx, _)) = donor else {
            // All clusters are singletons or empty and nothing can move;
            // only possible when n < k, which the entry point rejects.
            return;
        };
        assignments[idx] = empty;
        centers[empty] = points[idx].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)] {
            for d in 0..5 {
                pts.push(vec![cx + d as f64 * 0.1, cy + d as f64 * 0.1]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = three_blobs();
        let mut rng = StdRng::seed_from_u64(0);
        let r = kmeans(
            &pts,
            KmeansConfig::new(3),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        assert!(r.converged());
        // Each blob of five lands in one cluster.
        for blob in 0..3 {
            let first = r.assignments()[blob * 5];
            for i in 0..5 {
                assert_eq!(r.assignments()[blob * 5 + i], first);
            }
        }
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5, 5]);
    }

    #[test]
    fn every_cluster_is_non_empty() {
        // Adversarial: many identical points plus one outlier, k = 4.
        let mut pts = vec![vec![0.0, 0.0]; 20];
        pts.push(vec![100.0, 100.0]);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = kmeans(
                &pts,
                KmeansConfig::new(4),
                &Initializer::RandomRepresentative,
                &mut rng,
            )
            .unwrap();
            assert!(
                r.cluster_sizes().iter().all(|&s| s > 0),
                "seed {seed}: {:?}",
                r.cluster_sizes()
            );
        }
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let pts: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 10.0]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let r = kmeans(
            &pts,
            KmeansConfig::new(6),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1; 6]);
    }

    #[test]
    fn k_one_groups_everything() {
        let pts = three_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let r = kmeans(
            &pts,
            KmeansConfig::new(1),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.cluster_sizes(), vec![pts.len()]);
        // Center is the global mean.
        let mean_x = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        assert!((r.centers()[0][0] - mean_x).abs() < 1e-9);
    }

    #[test]
    fn too_few_points_is_an_error() {
        let pts = vec![vec![1.0]];
        let mut rng = StdRng::seed_from_u64(1);
        let err = kmeans(
            &pts,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, KmeansError::TooFewPoints { points: 1, k: 2 });
        assert!(err.to_string().contains("2 clusters"));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let pts = vec![vec![1.0], vec![1.0, 2.0]];
        let mut rng = StdRng::seed_from_u64(1);
        let err = kmeans(
            &pts,
            KmeansConfig::new(1),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, KmeansError::DimensionMismatch);
    }

    #[test]
    fn inertia_never_increases_with_more_clusters() {
        let pts = three_blobs();
        let best_inertia = |k: usize| -> f64 {
            (0..5)
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    kmeans(
                        &pts,
                        KmeansConfig::new(k),
                        &Initializer::RandomRepresentative,
                        &mut rng,
                    )
                    .unwrap()
                    .inertia(&pts)
                })
                .fold(f64::INFINITY, f64::min)
        };
        assert!(best_inertia(3) <= best_inertia(2) + 1e-9);
        assert!(best_inertia(2) <= best_inertia(1) + 1e-9);
    }

    #[test]
    fn provided_initializer_is_deterministic() {
        let pts = three_blobs();
        let run = || {
            let mut rng = StdRng::seed_from_u64(0);
            kmeans(
                &pts,
                KmeansConfig::new(3),
                &Initializer::Provided(vec![0, 5, 10]),
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clusters_partition_the_points() {
        let pts = three_blobs();
        let mut rng = StdRng::seed_from_u64(9);
        let r = kmeans(
            &pts,
            KmeansConfig::new(3),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        let mut all: Vec<usize> = r.clusters().into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..pts.len()).collect();
        assert_eq!(all, expect);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_k_rejected() {
        let _ = KmeansConfig::new(0);
    }
}
