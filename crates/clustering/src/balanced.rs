//! Size-capped K-means.
//!
//! Cooperative groups carry per-member management overhead (membership
//! state, freshness multicast fan-out), so operators often need a hard
//! ceiling on group size. This module provides a capacity-constrained
//! K-means: the iteration loop is the standard one, but each assignment
//! phase fills clusters greedily in *regret* order — points that lose
//! the most by missing their nearest center choose first — so no
//! cluster exceeds the cap. An extension beyond the paper.

use crate::init::Initializer;
use crate::kmeans::{sq_l2, Clustering, KmeansConfig, KmeansError};
use ecg_coords::FeatureMatrix;
use rand::Rng;

/// Error from [`kmeans_capped`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapError {
    /// `k × max_size` cannot hold all points.
    InsufficientCapacity {
        /// Points to place.
        points: usize,
        /// Clusters available.
        k: usize,
        /// Per-cluster cap.
        max_size: usize,
    },
    /// The underlying K-means machinery failed.
    Kmeans(KmeansError),
}

impl std::fmt::Display for CapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapError::InsufficientCapacity {
                points,
                k,
                max_size,
            } => write!(
                f,
                "{k} clusters capped at {max_size} cannot hold {points} points"
            ),
            CapError::Kmeans(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CapError {}

impl From<KmeansError> for CapError {
    fn from(e: KmeansError) -> Self {
        CapError::Kmeans(e)
    }
}

/// Runs K-means with a hard per-cluster size cap.
///
/// Identical to [`crate::kmeans()`] except for the assignment phase:
/// points are processed in descending *regret* (the cost gap between
/// their nearest and second-nearest centers) and each takes its nearest
/// center that still has room. Every cluster ends up non-empty and at
/// most `max_size` large.
///
/// # Errors
///
/// Returns [`CapError::InsufficientCapacity`] if `k × max_size <
/// points`, or a wrapped [`KmeansError`] for the usual input problems.
///
/// # Examples
///
/// ```
/// use ecg_clustering::balanced::kmeans_capped;
/// use ecg_clustering::{FeatureMatrix, Initializer, KmeansConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Six co-located points, 2 clusters, cap 3: forced 3/3 split.
/// let points = FeatureMatrix::from_rows(&vec![vec![0.0]; 6]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let r = kmeans_capped(
///     &points,
///     KmeansConfig::new(2),
///     &Initializer::RandomRepresentative,
///     3,
///     &mut rng,
/// )?;
/// let mut sizes = r.cluster_sizes();
/// sizes.sort_unstable();
/// assert_eq!(sizes, vec![3, 3]);
/// # Ok::<(), ecg_clustering::balanced::CapError>(())
/// ```
pub fn kmeans_capped<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    config: KmeansConfig,
    initializer: &Initializer,
    max_size: usize,
    rng: &mut R,
) -> Result<Clustering, CapError> {
    let n = points.len();
    let k = config.k();
    if k.saturating_mul(max_size) < n {
        return Err(CapError::InsufficientCapacity {
            points: n,
            k,
            max_size,
        });
    }
    if n < k {
        return Err(KmeansError::TooFewPoints { points: n, k }.into());
    }

    let seeds = initializer.select(points, k, rng)?;
    let mut centers = FeatureMatrix::with_capacity(k, points.dim());
    for &i in &seeds {
        centers.push_row(points.row(i));
    }
    let mut assignments = capped_assignment(points, &centers, max_size);

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.iteration_cap() {
        iterations += 1;
        update_centers(points, &assignments, &mut centers);
        let next = capped_assignment(points, &centers, max_size);
        let reassigned = next
            .iter()
            .zip(&assignments)
            .filter(|(a, b)| a != b)
            .count();
        assignments = next;
        if reassigned <= config.threshold() {
            converged = true;
            break;
        }
    }
    update_centers(points, &assignments, &mut centers);

    Ok(Clustering::from_parts(
        assignments,
        centers,
        iterations,
        converged,
    ))
}

/// Capacity-respecting assignment: regret-ordered greedy fill.
///
/// Guarantees every cluster gets at least one point when `n >= k` by
/// reserving: after the greedy pass, empty clusters steal the point
/// (from an over-1 cluster) nearest to their center.
fn capped_assignment(
    points: &FeatureMatrix,
    centers: &FeatureMatrix,
    max_size: usize,
) -> Vec<usize> {
    let n = points.len();
    let k = centers.len();
    // Order points by descending regret.
    let mut order: Vec<usize> = (0..n).collect();
    let regret = |p: &[f64]| -> f64 {
        let mut best = f64::INFINITY;
        let mut second = f64::INFINITY;
        for c in centers.iter_rows() {
            let d = sq_l2(p, c);
            if d < best {
                second = best;
                best = d;
            } else if d < second {
                second = d;
            }
        }
        if second.is_finite() {
            second - best
        } else {
            0.0
        }
    };
    let regrets: Vec<f64> = points.iter_rows().map(regret).collect();
    order.sort_by(|&a, &b| {
        regrets[b]
            .partial_cmp(&regrets[a])
            .expect("regrets are not NaN")
            .then(a.cmp(&b))
    });

    let mut counts = vec![0usize; k];
    let mut assignments = vec![usize::MAX; n];
    for &i in &order {
        // Nearest center with room.
        let mut best: Option<(usize, f64)> = None;
        for (c, center) in centers.iter_rows().enumerate() {
            if counts[c] >= max_size {
                continue;
            }
            let d = sq_l2(points.row(i), center);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((c, d));
            }
        }
        let (c, _) = best.expect("capacity was pre-checked");
        assignments[i] = c;
        counts[c] += 1;
    }

    // Repair empties: give each empty cluster the nearest point from a
    // donor with more than one member.
    while let Some(empty) = counts.iter().position(|&c| c == 0) {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in points.iter_rows().enumerate() {
            if counts[assignments[i]] <= 1 {
                continue;
            }
            let d = sq_l2(p, centers.row(empty));
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        let (i, _) = best.expect("n >= k guarantees a donor");
        counts[assignments[i]] -= 1;
        assignments[i] = empty;
        counts[empty] += 1;
    }
    assignments
}

/// Flat-storage center update, accumulating in point-index order.
fn update_centers(points: &FeatureMatrix, assignments: &[usize], centers: &mut FeatureMatrix) {
    let dim = points.dim();
    let k = centers.len();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (p, &c) in points.iter_rows().zip(assignments) {
        counts[c] += 1;
        for (s, v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
            *s += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            for (cv, sv) in centers
                .row_mut(c)
                .iter_mut()
                .zip(&sums[c * dim..(c + 1) * dim])
            {
                *cv = sv / counts[c] as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> FeatureMatrix {
        // 8 points near 0, 2 points near 100: uncapped K-means would
        // split 8/2.
        let mut pts = FeatureMatrix::new(1);
        for i in 0..8 {
            pts.push_row(&[i as f64 * 0.1]);
        }
        pts.push_row(&[100.0]);
        pts.push_row(&[100.1]);
        pts
    }

    #[test]
    fn cap_is_respected() {
        let pts = blobs();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = kmeans_capped(
                &pts,
                KmeansConfig::new(2),
                &Initializer::RandomRepresentative,
                6,
                &mut rng,
            )
            .unwrap();
            let sizes = r.cluster_sizes();
            assert!(sizes.iter().all(|&s| s <= 6 && s > 0), "{sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), 10);
        }
    }

    #[test]
    fn loose_cap_matches_natural_split() {
        let pts = blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let r = kmeans_capped(
            &pts,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            10,
            &mut rng,
        )
        .unwrap();
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 8]);
    }

    #[test]
    fn tight_cap_forces_overflow_to_other_cluster() {
        let pts = blobs();
        let mut rng = StdRng::seed_from_u64(4);
        let r = kmeans_capped(
            &pts,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            5,
            &mut rng,
        )
        .unwrap();
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5]);
    }

    #[test]
    fn insufficient_capacity_is_an_error() {
        let pts = blobs();
        let mut rng = StdRng::seed_from_u64(5);
        let err = kmeans_capped(
            &pts,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            4,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, CapError::InsufficientCapacity { .. }));
        assert!(err.to_string().contains("10 points"));
    }

    #[test]
    fn every_cluster_non_empty_under_duplicates() {
        let pts = FeatureMatrix::from_rows(&vec![vec![1.0]; 9]);
        let mut rng = StdRng::seed_from_u64(6);
        let r = kmeans_capped(
            &pts,
            KmeansConfig::new(3),
            &Initializer::RandomRepresentative,
            3,
            &mut rng,
        )
        .unwrap();
        let sizes = r.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 3), "{sizes:?}");
    }

    #[test]
    fn wraps_kmeans_errors() {
        let pts = FeatureMatrix::from_rows(&[vec![1.0]]);
        let mut rng = StdRng::seed_from_u64(7);
        let err = kmeans_capped(
            &pts,
            KmeansConfig::new(2),
            &Initializer::RandomRepresentative,
            5,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CapError::Kmeans(KmeansError::TooFewPoints { .. })
        ));
    }
}
