//! Choosing the number of groups `K`.
//!
//! The paper treats `K` as "a pre-specified parameter" and Figure 3
//! shows the choice matters — latency is U-shaped in group size. This
//! module provides the standard unsupervised heuristic: sweep candidate
//! `K` values, cluster each, and pick the one with the best mean
//! silhouette (how much closer points sit to their own cluster than to
//! the nearest other one).

use crate::init::Initializer;
use crate::kmeans::{kmeans, sq_l2, KmeansConfig, KmeansError};
use crate::quality::mean_silhouette;
use ecg_coords::FeatureMatrix;
use rand::Rng;

/// Result of a K sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct KSelection {
    /// The silhouette-maximizing candidate.
    pub k: usize,
    /// Its mean silhouette score.
    pub score: f64,
    /// Every candidate's `(k, silhouette)`, in candidate order.
    pub scores: Vec<(usize, f64)>,
}

/// Sweeps `candidates` and returns the silhouette-best `K`.
///
/// For each candidate, `attempts` K-means runs are performed and the
/// lowest-inertia clustering is scored (K-means is seed-sensitive;
/// scoring a bad local optimum would punish the candidate unfairly).
/// Candidates larger than the point count are skipped. Candidates equal
/// to 1 or the point count score zero silhouette by convention, so
/// meaningful candidates should lie strictly between.
///
/// # Errors
///
/// Returns [`KmeansError`] if no candidate is usable (empty list or all
/// larger than the point count), or clustering itself fails.
///
/// # Examples
///
/// ```
/// use ecg_clustering::model_selection::suggest_k;
/// use ecg_clustering::{FeatureMatrix, Initializer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Three well-separated blobs of four points.
/// let mut points = FeatureMatrix::new(1);
/// for center in [0.0, 100.0, 200.0] {
///     for d in 0..4 {
///         points.push_row(&[center + d as f64]);
///     }
/// }
/// let mut rng = StdRng::seed_from_u64(1);
/// let selection = suggest_k(
///     &points,
///     &[2, 3, 4, 6],
///     &Initializer::RandomRepresentative,
///     3,
///     &mut rng,
/// )?;
/// assert_eq!(selection.k, 3);
/// # Ok::<(), ecg_clustering::KmeansError>(())
/// ```
pub fn suggest_k<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    candidates: &[usize],
    initializer: &Initializer,
    attempts: usize,
    rng: &mut R,
) -> Result<KSelection, KmeansError> {
    let n = points.len();
    let usable: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&k| k >= 1 && k <= n)
        .collect();
    if usable.is_empty() {
        return Err(KmeansError::TooFewPoints {
            points: n,
            k: candidates.iter().copied().max().unwrap_or(1),
        });
    }
    let attempts = attempts.max(1);

    let cost = |a: usize, b: usize| sq_l2(points.row(a), points.row(b)).sqrt();
    let mut scores = Vec::with_capacity(usable.len());
    for &k in &usable {
        let mut best: Option<(f64, f64)> = None; // (inertia, silhouette)
        for _ in 0..attempts {
            let clustering = kmeans(points, KmeansConfig::new(k), initializer, rng)?;
            let inertia = clustering.inertia(points);
            if best.is_none_or(|(bi, _)| inertia < bi) {
                let silhouette = mean_silhouette(&clustering.clusters(), cost);
                best = Some((inertia, silhouette));
            }
        }
        scores.push((k, best.expect("attempts >= 1").1));
    }
    let &(k, score) = scores
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("silhouettes are not NaN"))
        .expect("usable candidates exist");
    Ok(KSelection { k, score, scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(centers: &[(f64, f64)], per_blob: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = FeatureMatrix::new(2);
        for &(cx, cy) in centers {
            for _ in 0..per_blob {
                points.push_row(&[cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)]);
            }
        }
        points
    }

    #[test]
    fn recovers_true_blob_count() {
        let points = blobs(&[(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)], 8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let sel = suggest_k(
            &points,
            &[2, 3, 4, 5, 6],
            &Initializer::RandomRepresentative,
            4,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.k, 4, "scores: {:?}", sel.scores);
        assert!(sel.score > 0.7);
    }

    #[test]
    fn reports_all_candidate_scores() {
        let points = blobs(&[(0.0, 0.0), (80.0, 0.0)], 6, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let sel = suggest_k(
            &points,
            &[2, 3, 4],
            &Initializer::RandomRepresentative,
            3,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.scores.len(), 3);
        assert_eq!(sel.scores[0].0, 2);
        assert_eq!(sel.k, 2);
        // The winner's score matches its entry.
        let winner = sel.scores.iter().find(|(k, _)| *k == sel.k).unwrap();
        assert_eq!(winner.1, sel.score);
    }

    #[test]
    fn oversized_candidates_are_skipped() {
        let points = blobs(&[(0.0, 0.0), (50.0, 0.0)], 3, 5); // 6 points
        let mut rng = StdRng::seed_from_u64(6);
        let sel = suggest_k(
            &points,
            &[2, 100],
            &Initializer::RandomRepresentative,
            2,
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.scores.len(), 1);
        assert_eq!(sel.k, 2);
    }

    #[test]
    fn no_usable_candidate_is_an_error() {
        let points = blobs(&[(0.0, 0.0)], 3, 7); // 3 points
        let mut rng = StdRng::seed_from_u64(8);
        let err = suggest_k(
            &points,
            &[10, 20],
            &Initializer::RandomRepresentative,
            2,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, KmeansError::TooFewPoints { .. }));
    }
}
