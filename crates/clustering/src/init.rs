//! K-means initialization strategies.
//!
//! The SL and SDSL schemes differ only here: SL draws the `K` initial
//! cluster centers uniformly ("any cache may be selected to an initial
//! cluster center with equal probability", §4), while SDSL biases the
//! draw so "the probability that an edge cache is chosen as an initial
//! cluster center is made inversely proportional to its distance from
//! the origin server". [`Initializer::Weighted`] implements that biased
//! draw for arbitrary weights; k-means++ is included as an extension
//! baseline for the ablation benches.

use crate::kmeans::{sq_l2, KmeansError};
use ecg_coords::FeatureMatrix;
use rand::Rng;

/// Strategy for choosing the `k` initial cluster centers.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// Uniform random distinct points — the SL scheme's initialization.
    RandomRepresentative,
    /// Distinct points drawn without replacement with probability
    /// proportional to the given per-point weights — the SDSL scheme's
    /// initialization with `w_j = 1 / Dist(Ec_j, Os)^θ`.
    ///
    /// Weights must be non-negative and finite with at least `k` strictly
    /// positive entries.
    Weighted(Vec<f64>),
    /// k-means++ seeding (Arthur & Vassilvitskii '07): each subsequent
    /// seed is drawn with probability proportional to its squared
    /// distance from the nearest already-chosen seed. Not in the paper;
    /// used by the ablation benches as a stronger-initialization
    /// reference point.
    KmeansPlusPlus,
    /// Explicit seed point indices, for tests and deterministic replays.
    Provided(Vec<usize>),
}

impl Initializer {
    /// Selects `k` distinct seed indices out of `points`.
    ///
    /// # Errors
    ///
    /// Returns [`KmeansError::BadInitializer`] if the strategy cannot
    /// produce `k` distinct valid seeds (bad weights, out-of-range or
    /// duplicate provided indices).
    pub fn select<R: Rng + ?Sized>(
        &self,
        points: &FeatureMatrix,
        k: usize,
        rng: &mut R,
    ) -> Result<Vec<usize>, KmeansError> {
        let n = points.len();
        debug_assert!(n >= k);
        match self {
            Initializer::RandomRepresentative => {
                let mut indices: Vec<usize> = (0..n).collect();
                // Partial Fisher-Yates: first k slots become the sample.
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    indices.swap(i, j);
                }
                indices.truncate(k);
                Ok(indices)
            }
            Initializer::Weighted(weights) => {
                if weights.len() != n {
                    return Err(KmeansError::BadInitializer(format!(
                        "got {} weights for {n} points",
                        weights.len()
                    )));
                }
                if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                    return Err(KmeansError::BadInitializer(
                        "weights must be finite and non-negative".into(),
                    ));
                }
                if weights.iter().filter(|w| **w > 0.0).count() < k {
                    return Err(KmeansError::BadInitializer(format!(
                        "need at least {k} positive weights"
                    )));
                }
                let mut remaining = weights.clone();
                let mut chosen = Vec::with_capacity(k);
                for _ in 0..k {
                    let total: f64 = remaining.iter().sum();
                    let mut target = rng.gen::<f64>() * total;
                    let mut pick = None;
                    for (i, &w) in remaining.iter().enumerate() {
                        if w <= 0.0 {
                            continue;
                        }
                        target -= w;
                        if target <= 0.0 {
                            pick = Some(i);
                            break;
                        }
                    }
                    // Floating-point slack: fall back to the last positive.
                    let pick = pick.unwrap_or_else(|| {
                        remaining
                            .iter()
                            .rposition(|&w| w > 0.0)
                            .expect("positive weights remain")
                    });
                    chosen.push(pick);
                    remaining[pick] = 0.0;
                }
                Ok(chosen)
            }
            Initializer::KmeansPlusPlus => {
                let mut chosen = Vec::with_capacity(k);
                chosen.push(rng.gen_range(0..n));
                let mut dist2: Vec<f64> = points
                    .iter_rows()
                    .map(|p| sq_l2(p, points.row(chosen[0])))
                    .collect();
                while chosen.len() < k {
                    let total: f64 = dist2.iter().sum();
                    let next = if total <= f64::EPSILON {
                        // All remaining points coincide with chosen seeds:
                        // fall back to any unchosen index.
                        (0..n)
                            .find(|i| !chosen.contains(i))
                            .expect("n >= k so an unchosen point exists")
                    } else {
                        let mut target = rng.gen::<f64>() * total;
                        let mut pick = n - 1;
                        for (i, &d) in dist2.iter().enumerate() {
                            target -= d;
                            if target <= 0.0 {
                                pick = i;
                                break;
                            }
                        }
                        pick
                    };
                    chosen.push(next);
                    let next_row = points.row(next);
                    for (i, p) in points.iter_rows().enumerate() {
                        dist2[i] = dist2[i].min(sq_l2(p, next_row));
                    }
                }
                Ok(chosen)
            }
            Initializer::Provided(indices) => {
                if indices.len() != k {
                    return Err(KmeansError::BadInitializer(format!(
                        "provided {} seeds for k = {k}",
                        indices.len()
                    )));
                }
                let mut sorted = indices.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != k {
                    return Err(KmeansError::BadInitializer("duplicate seeds".into()));
                }
                if sorted.last().is_some_and(|&m| m >= n) {
                    return Err(KmeansError::BadInitializer("seed out of range".into()));
                }
                Ok(indices.clone())
            }
        }
    }
}

/// Builds the SDSL initialization weights `w_j = 1 / d_j^θ` from
/// per-point server distances.
///
/// `theta` controls server-distance sensitivity: `0` degenerates to the
/// uniform SL draw, larger values concentrate the seeds ever closer to
/// the origin. Distances of zero are clamped to the smallest positive
/// distance (a cache co-located with the origin is simply "very close").
///
/// # Panics
///
/// Panics if `theta` is negative/not finite or any distance is
/// negative/not finite.
pub fn server_distance_weights(server_distances: &[f64], theta: f64) -> Vec<f64> {
    assert!(
        theta.is_finite() && theta >= 0.0,
        "theta must be finite and non-negative"
    );
    for &d in server_distances {
        assert!(
            d.is_finite() && d >= 0.0,
            "server distances must be finite and non-negative"
        );
    }
    let min_positive = server_distances
        .iter()
        .copied()
        .filter(|&d| d > 0.0)
        .fold(f64::INFINITY, f64::min);
    let floor = if min_positive.is_finite() {
        min_positive
    } else {
        1.0
    };
    server_distances
        .iter()
        .map(|&d| 1.0 / d.max(floor).powf(theta))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn points(n: usize) -> FeatureMatrix {
        FeatureMatrix::from_rows(&(0..n).map(|i| vec![i as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn random_representative_is_distinct_and_in_range() {
        let pts = points(10);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let s = Initializer::RandomRepresentative
                .select(&pts, 4, &mut rng)
                .unwrap();
            assert_eq!(s.len(), 4);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
            assert!(sorted.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn random_representative_is_uniform_ish() {
        // Each of 5 points should be chosen ~ k/n = 2/5 of the time.
        let pts = points(5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        let trials = 5_000;
        for _ in 0..trials {
            for i in Initializer::RandomRepresentative
                .select(&pts, 2, &mut rng)
                .unwrap()
            {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.4).abs() < 0.05, "point {i} frequency {frac}");
        }
    }

    #[test]
    fn weighted_prefers_heavy_points() {
        let pts = points(4);
        let weights = vec![100.0, 1.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(2);
        let mut first_count = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            let s = Initializer::Weighted(weights.clone())
                .select(&pts, 1, &mut rng)
                .unwrap();
            if s[0] == 0 {
                first_count += 1;
            }
        }
        let frac = first_count as f64 / trials as f64;
        assert!(frac > 0.9, "heavy point chosen only {frac} of the time");
    }

    #[test]
    fn weighted_draws_without_replacement() {
        let pts = points(3);
        let weights = vec![1.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Initializer::Weighted(weights)
            .select(&pts, 3, &mut rng)
            .unwrap();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn weighted_ignores_zero_weight_points() {
        let pts = points(4);
        let weights = vec![0.0, 1.0, 1.0, 0.0];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = Initializer::Weighted(weights.clone())
                .select(&pts, 2, &mut rng)
                .unwrap();
            assert!(!s.contains(&0));
            assert!(!s.contains(&3));
        }
    }

    #[test]
    fn weighted_errors_on_bad_input() {
        let pts = points(3);
        let mut rng = StdRng::seed_from_u64(5);
        for bad in [
            vec![1.0, 1.0],           // wrong arity
            vec![1.0, -1.0, 1.0],     // negative
            vec![f64::NAN, 1.0, 1.0], // NaN
            vec![1.0, 0.0, 0.0],      // too few positive for k = 2
        ] {
            assert!(
                Initializer::Weighted(bad.clone())
                    .select(&pts, 2, &mut rng)
                    .is_err(),
                "weights {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn kmeanspp_spreads_seeds() {
        // Two far blobs: with k = 2 the seeds should almost always land
        // in different blobs.
        let mut pts = FeatureMatrix::new(1);
        for i in 0..10 {
            pts.push_row(&[i as f64 * 0.01]);
        }
        for i in 0..10 {
            pts.push_row(&[1_000.0 + i as f64 * 0.01]);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let mut split = 0usize;
        for _ in 0..200 {
            let s = Initializer::KmeansPlusPlus
                .select(&pts, 2, &mut rng)
                .unwrap();
            let blob = |i: usize| usize::from(i >= 10);
            if blob(s[0]) != blob(s[1]) {
                split += 1;
            }
        }
        assert!(split > 190, "seeds split blobs only {split}/200 times");
    }

    #[test]
    fn kmeanspp_handles_duplicate_points() {
        let pts = FeatureMatrix::from_rows(&vec![vec![5.0]; 6]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = Initializer::KmeansPlusPlus
            .select(&pts, 3, &mut rng)
            .unwrap();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn provided_validates() {
        let pts = points(5);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(Initializer::Provided(vec![0, 2])
            .select(&pts, 2, &mut rng)
            .is_ok());
        for bad in [vec![0usize], vec![0, 0], vec![0, 9]] {
            assert!(Initializer::Provided(bad)
                .select(&pts, 2, &mut rng)
                .is_err());
        }
    }

    #[test]
    fn server_distance_weights_invert_distance() {
        let w = server_distance_weights(&[1.0, 2.0, 4.0], 1.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let w = server_distance_weights(&[1.0, 5.0, 100.0], 0.0);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn higher_theta_sharpens_bias() {
        let d = [1.0, 10.0];
        let ratio = |theta: f64| {
            let w = server_distance_weights(&d, theta);
            w[0] / w[1]
        };
        assert!(ratio(2.0) > ratio(1.0));
        assert!((ratio(1.0) - 10.0).abs() < 1e-9);
        assert!((ratio(2.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn zero_distance_is_clamped() {
        let w = server_distance_weights(&[0.0, 2.0], 1.0);
        assert!(w[0].is_finite());
        assert!(w[0] >= w[1]);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn negative_theta_panics() {
        let _ = server_distance_weights(&[1.0], -1.0);
    }
}
