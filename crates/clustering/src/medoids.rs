//! K-medoids (PAM) clustering over a dissimilarity function.
//!
//! Unlike K-means, PAM needs no vector space — it clusters straight
//! from pairwise dissimilarities. For cache grouping that means
//! clustering the *measured RTT matrix itself*, which is exactly what
//! the paper's landmark machinery exists to avoid: measuring all
//! `N(N-1)/2` pairs. The probing-overhead ablation uses this module to
//! quantify what that avoided measurement would have bought.

use crate::quality::euclidean_cost;
use ecg_coords::FeatureMatrix;
use rand::Rng;

/// Result of a PAM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Medoids {
    /// The chosen medoid indices, one per cluster.
    pub medoids: Vec<usize>,
    /// Cluster index of each item.
    pub assignments: Vec<usize>,
    /// Swap-phase iterations executed.
    pub iterations: usize,
}

impl Medoids {
    /// Groups item indices by cluster, ascending within each cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.medoids.len()];
        for (item, &c) in self.assignments.iter().enumerate() {
            groups[c].push(item);
        }
        groups
    }

    /// Total dissimilarity of items to their medoids — PAM's objective.
    pub fn cost(&self, dist: impl Fn(usize, usize) -> f64) -> f64 {
        self.assignments
            .iter()
            .enumerate()
            .map(|(i, &c)| dist(i, self.medoids[c]))
            .sum()
    }
}

/// Runs PAM: random build phase, then greedy swap phase until no swap
/// improves the objective (or `max_iterations` passes).
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
///
/// # Examples
///
/// ```
/// use ecg_clustering::medoids::pam;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let pos = [0.0f64, 1.0, 50.0, 51.0];
/// let mut rng = StdRng::seed_from_u64(1);
/// let r = pam(4, 2, |a, b| (pos[a] - pos[b]).abs(), 20, &mut rng);
/// let mut clusters = r.clusters();
/// clusters.sort();
/// assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
/// ```
pub fn pam<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    dist: impl Fn(usize, usize) -> f64,
    max_iterations: usize,
    rng: &mut R,
) -> Medoids {
    assert!(k > 0, "need at least one cluster");
    assert!(k <= n, "cannot form {k} clusters from {n} items");

    // Build: k distinct random medoids.
    let mut indices: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        indices.swap(i, j);
    }
    let mut medoids: Vec<usize> = indices[..k].to_vec();

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut assignments = vec![0usize; n];
        let mut total = 0.0;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let (best_c, best_d) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, dist(i, m)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
                .expect("at least one medoid");
            *slot = best_c;
            total += best_d;
        }
        (assignments, total)
    };

    let (mut assignments, mut best_cost) = assign(&medoids);
    let mut iterations = 0;
    while iterations < max_iterations {
        iterations += 1;
        let mut improved = false;
        for c in 0..k {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let old = medoids[c];
                medoids[c] = candidate;
                let (new_assignments, new_cost) = assign(&medoids);
                if new_cost + 1e-12 < best_cost {
                    best_cost = new_cost;
                    assignments = new_assignments;
                    improved = true;
                } else {
                    medoids[c] = old;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Medoids {
        medoids,
        assignments,
        iterations,
    }
}

/// PAM over the rows of a [`FeatureMatrix`] with Euclidean
/// dissimilarity — the flat-storage convenience wrapper used when the
/// caller already holds clustering points rather than a measured
/// dissimilarity matrix.
///
/// # Panics
///
/// Panics if `k == 0` or `k > points.len()` (as [`pam`]).
pub fn pam_euclidean<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    k: usize,
    max_iterations: usize,
    rng: &mut R,
) -> Medoids {
    pam(points.len(), k, euclidean_cost(points), max_iterations, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(pos: &[f64]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |a, b| (pos[a] - pos[b]).abs()
    }

    #[test]
    fn recovers_separated_clusters() {
        let pos = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0];
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = pam(6, 2, line(&pos), 50, &mut rng);
            let mut clusters = r.clusters();
            clusters.sort();
            assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4, 5]], "seed {seed}");
        }
    }

    #[test]
    fn medoids_are_members_of_their_clusters() {
        let pos: Vec<f64> = (0..15).map(|i| (i * i) as f64).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let r = pam(15, 4, line(&pos), 50, &mut rng);
        for (c, &m) in r.medoids.iter().enumerate() {
            assert_eq!(r.assignments[m], c, "medoid {m} not in its own cluster");
        }
    }

    #[test]
    fn output_is_a_partition() {
        let pos: Vec<f64> = (0..20).map(|i| (i * 7 % 13) as f64).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let r = pam(20, 5, line(&pos), 50, &mut rng);
        let mut all: Vec<usize> = r.clusters().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn swaps_never_worsen_cost() {
        // PAM's final cost is no worse than its random initialization.
        let pos: Vec<f64> = (0..25).map(|i| ((i * 31) % 17) as f64).collect();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = pam(25, 4, line(&pos), 0, &mut rng); // build only
            let mut rng = StdRng::seed_from_u64(seed);
            let full = pam(25, 4, line(&pos), 50, &mut rng);
            assert!(full.cost(line(&pos)) <= init.cost(line(&pos)) + 1e-9);
        }
    }

    #[test]
    fn k_equals_n_is_perfect() {
        let pos = [3.0, 9.0, 27.0];
        let mut rng = StdRng::seed_from_u64(3);
        let r = pam(3, 3, line(&pos), 10, &mut rng);
        assert_eq!(r.cost(line(&pos)), 0.0);
    }

    #[test]
    fn euclidean_wrapper_matches_explicit_closure() {
        let pos = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0];
        let m = FeatureMatrix::from_rows(&pos.iter().map(|&p| vec![p]).collect::<Vec<_>>());
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let via_wrapper = pam_euclidean(&m, 2, 50, &mut rng_a);
        let via_closure = pam(6, 2, line(&pos), 50, &mut rng_b);
        assert_eq!(via_wrapper, via_closure);
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn too_many_clusters_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = pam(2, 3, |_, _| 1.0, 10, &mut rng);
    }
}
