//! Clustering algorithms for edge cache group formation.
//!
//! The paper partitions edge caches with K-means over landmark feature
//! vectors; the SL and SDSL schemes differ only in the K-means
//! *initialization*. This crate keeps that split explicit:
//!
//! * [`kmeans()`] — the assign/update loop with the paper's termination
//!   condition and empty-cluster repair.
//! * [`Initializer`] — uniform seeding (SL), weighted seeding (SDSL via
//!   [`server_distance_weights`]), k-means++ (ablation), or explicit
//!   seeds.
//! * [`quality`] — average group interaction cost (the paper's accuracy
//!   metric), silhouettes, size stats.
//! * [`hierarchical`] — agglomerative clustering over raw dissimilarity
//!   matrices, used as an ablation baseline.
//!
//! Points are handed in as an [`FeatureMatrix`] (re-exported from
//! `ecg-coords`): one contiguous row-major buffer, so the distance
//! kernels in the Lloyd loop stream over flat memory. [`kmeans()`] also
//! prunes re-assignment scans with Hamerly-style distance bounds while
//! producing output identical to the retained naive implementation
//! [`kmeans_reference()`]; at large k the surviving scans route through
//! the KD-tree over centers in [`tree`] (see [`AssignMode`]), still bit
//! identical.
//!
//! # Examples
//!
//! ```
//! use ecg_clustering::{kmeans, FeatureMatrix, Initializer, KmeansConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let points = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![100.0], vec![101.0]]);
//! let mut rng = StdRng::seed_from_u64(7);
//! let result = kmeans(
//!     &points,
//!     KmeansConfig::new(2),
//!     &Initializer::RandomRepresentative,
//!     &mut rng,
//! )?;
//! assert_eq!(result.cluster_sizes(), vec![2, 2]);
//! # Ok::<(), ecg_clustering::KmeansError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod balanced;
pub mod blocked;
pub mod hierarchical;
pub mod init;
pub mod kmeans;
pub mod masked;
pub mod medoids;
pub mod minibatch;
pub mod model_selection;
pub mod quality;
pub mod tree;

pub use balanced::{kmeans_capped, CapError};
pub use blocked::BlockedCenters;
pub use ecg_coords::FeatureMatrix;
pub use init::{server_distance_weights, Initializer};
pub use kmeans::{
    kmeans, kmeans_observed, kmeans_reference, Clustering, KmeansConfig, KmeansError,
};
pub use masked::{kmeans_masked, kmeans_masked_observed, masked_sq_l2};
pub use medoids::{pam, pam_euclidean, Medoids};
pub use minibatch::{kmeans_minibatch, kmeans_variant, KmeansVariant, MiniBatchConfig};
pub use model_selection::{suggest_k, KSelection};
pub use quality::{
    average_group_interaction_cost, euclidean_cost, group_interaction_cost, group_size_stats,
    mean_silhouette,
};
pub use tree::{take_tree_build_ms, AssignMode, CenterTree, TREE_AUTO_MIN_K};
