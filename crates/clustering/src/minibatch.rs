//! Deterministic mini-batch K-means for the large-N formation path.
//!
//! Full-batch Lloyd iterations cost O(n·k·d) per iteration; past
//! N ≈ 50k caches that scan is the formation bottleneck even with the
//! blocked kernel. Mini-batch K-means (Sculley, WWW 2010) replaces the
//! full scan with a small sampled batch per iteration and a per-center
//! learning-rate update, trading a slightly noisier objective for an
//! iteration cost independent of `n`. It is strictly **opt-in** via
//! [`KmeansVariant::MiniBatch`] — the paper-exact path stays full-batch
//! Lloyd, and every historical experiment output is untouched.
//!
//! # Determinism scheme
//!
//! Naive parallel mini-batch is nondeterministic twice over: batch
//! sampling order and update order both depend on scheduling. Here
//! neither does:
//!
//! * **Batch sampling** draws from a per-iteration [`rand::rngs::StdRng`]
//!   seeded with `ecg_par::derive_seed(master, iteration)`, where
//!   `master` is drawn once from the caller's RNG. Batches depend only
//!   on the seed and the iteration number — never on thread count.
//! * **Assignment** of the batch fans out over fixed
//!   [`ecg_par::chunk_ranges`] chunks (shared immutable centers —
//!   blocked kernel or center tree per the configured
//!   [`crate::AssignMode`], bit-identical either way — and per-slot
//!   writes) and is reassembled in input order.
//! * **The Sculley update** (`counts[c] += 1; η = 1/counts[c];
//!   c += η·(p − c)`) is inherently order-sensitive in f64, so it runs
//!   sequentially in batch order. It touches `batch_size · d` values per
//!   iteration — noise next to the assignment scan.
//!
//! The result is bit-identical for any `ECG_THREADS`, which the
//! determinism tests pin at 1, 2, and 8 threads.

use crate::init::Initializer;
use crate::kmeans::{repair_empty_clusters, Clustering, KmeansConfig, KmeansError};
use crate::tree::CenterScanner;
use ecg_coords::FeatureMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch schedule for [`kmeans_minibatch`].
///
/// # Examples
///
/// ```
/// use ecg_clustering::MiniBatchConfig;
///
/// let mb = MiniBatchConfig::default().batch_size(1024).iterations(60);
/// assert_eq!(mb.batch(), 1024);
/// assert_eq!(mb.iters(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiniBatchConfig {
    batch_size: usize,
    iterations: usize,
}

impl Default for MiniBatchConfig {
    /// 2048-point batches for 40 iterations — enough for the center
    /// estimates to settle at bench scale while each iteration stays
    /// O(batch·k·d).
    fn default() -> Self {
        MiniBatchConfig {
            batch_size: 2048,
            iterations: 40,
        }
    }
}

impl MiniBatchConfig {
    /// Sets the points sampled per iteration (with replacement).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "mini-batch needs a non-empty batch");
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of mini-batch update iterations.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Points sampled per iteration.
    pub fn batch(&self) -> usize {
        self.batch_size
    }

    /// Update iterations run.
    pub fn iters(&self) -> usize {
        self.iterations
    }
}

/// Which K-means engine a formation run uses.
///
/// [`Lloyd`](KmeansVariant::Lloyd) is the paper-exact full-batch loop
/// ([`crate::kmeans()`]); [`MiniBatch`](KmeansVariant::MiniBatch) is the
/// sampled large-N variant. Dispatch through [`kmeans_variant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KmeansVariant {
    /// Full-batch Lloyd iterations — the paper's algorithm, byte-exact
    /// with every historical experiment.
    #[default]
    Lloyd,
    /// Sampled mini-batch updates for large N (opt-in).
    MiniBatch(MiniBatchConfig),
}

/// Runs the K-means engine selected by `variant`.
///
/// `Lloyd` delegates to [`crate::kmeans()`] (identical RNG consumption,
/// identical result); `MiniBatch` runs [`kmeans_minibatch`]. Both honor
/// `config.k()`; the mini-batch schedule comes from its own
/// [`MiniBatchConfig`] rather than `config`'s iteration cap.
///
/// # Errors
///
/// Returns [`KmeansError`] if there are fewer points than clusters or
/// the initializer misbehaves.
pub fn kmeans_variant<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    config: KmeansConfig,
    variant: &KmeansVariant,
    initializer: &Initializer,
    rng: &mut R,
) -> Result<Clustering, KmeansError> {
    match variant {
        KmeansVariant::Lloyd => crate::kmeans(points, config, initializer, rng),
        KmeansVariant::MiniBatch(mb) => kmeans_minibatch(points, config, *mb, initializer, rng),
    }
}

/// Deterministic mini-batch K-means (see the module docs for the
/// determinism scheme).
///
/// Seeds come from `initializer` exactly as in [`crate::kmeans()`]; one
/// further `u64` master seed is drawn from `rng` for the batch streams.
/// After the update iterations, every point gets one final full
/// (parallel, blocked) assignment pass and empty clusters are repaired,
/// so exactly `config.k()` non-empty clusters come out.
///
/// # Errors
///
/// Returns [`KmeansError`] if there are fewer points than clusters or
/// the initializer misbehaves.
///
/// # Examples
///
/// ```
/// use ecg_clustering::{kmeans_minibatch, FeatureMatrix, Initializer};
/// use ecg_clustering::{KmeansConfig, MiniBatchConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let points = FeatureMatrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![9.0], vec![9.1],
/// ]);
/// let mut rng = StdRng::seed_from_u64(5);
/// let r = kmeans_minibatch(
///     &points,
///     KmeansConfig::new(2),
///     MiniBatchConfig::default().batch_size(4).iterations(10),
///     &Initializer::RandomRepresentative,
///     &mut rng,
/// )?;
/// assert_eq!(r.assignments()[0], r.assignments()[1]);
/// assert_ne!(r.assignments()[0], r.assignments()[2]);
/// # Ok::<(), ecg_clustering::KmeansError>(())
/// ```
pub fn kmeans_minibatch<R: Rng + ?Sized>(
    points: &FeatureMatrix,
    config: KmeansConfig,
    mb: MiniBatchConfig,
    initializer: &Initializer,
    rng: &mut R,
) -> Result<Clustering, KmeansError> {
    let n = points.len();
    let k = config.k();
    if n < k {
        return Err(KmeansError::TooFewPoints { points: n, k });
    }

    let seeds = initializer.select(points, k, rng)?;
    let mut centers = FeatureMatrix::with_capacity(k, points.dim());
    for &i in &seeds {
        centers.push_row(points.row(i));
    }
    // One master draw; each iteration's batch stream is derived from it,
    // so sampling is independent of thread count.
    let master: u64 = rng.gen();

    let mut scanner = CenterScanner::stage(&centers, config.assign_mode());
    let mut counts = vec![0usize; k];
    let mut batch = Vec::with_capacity(mb.batch_size);
    for iteration in 0..mb.iterations {
        let mut batch_rng = StdRng::seed_from_u64(ecg_par::derive_seed(master, iteration as u64));
        batch.clear();
        batch.extend((0..mb.batch_size).map(|_| batch_rng.gen_range(0..n)));

        // Parallel blocked assignment of the batch, fixed chunks,
        // reassembled in batch order.
        let nearest: Vec<usize> = ecg_par::par_chunk_map(batch.len(), |range| {
            batch[range]
                .iter()
                .map(|&i| scanner.scan(points.row(i)).0)
                .collect::<Vec<usize>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Sequential Sculley update in batch order (f64 order matters).
        for (&i, &c) in batch.iter().zip(&nearest) {
            counts[c] += 1;
            let eta = 1.0 / counts[c] as f64;
            for (cv, &pv) in centers.row_mut(c).iter_mut().zip(points.row(i)) {
                *cv += eta * (pv - *cv);
            }
        }
        scanner.refill(&centers);
    }

    // Final full assignment over all points, then the usual no-empty-
    // groups guarantee.
    let mut assignments: Vec<usize> = ecg_par::par_chunk_map(n, |range| {
        range
            .map(|i| scanner.scan(points.row(i)).0)
            .collect::<Vec<usize>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut stolen = Vec::new();
    repair_empty_clusters(points, &mut assignments, &mut centers, &mut stolen);

    Ok(Clustering::from_parts(
        assignments,
        centers,
        mb.iterations,
        true,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per_blob: usize) -> FeatureMatrix {
        let mut pts = FeatureMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)] {
            for d in 0..per_blob {
                pts.push_row(&[cx + (d % 7) as f64 * 0.2, cy + (d % 5) as f64 * 0.2]);
            }
        }
        pts
    }

    #[test]
    fn same_seed_same_clustering() {
        let pts = blobs(40);
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            kmeans_minibatch(
                &pts,
                KmeansConfig::new(3),
                MiniBatchConfig::default().batch_size(32).iterations(25),
                &Initializer::RandomRepresentative,
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn recovers_separated_blobs_with_k_non_empty_clusters() {
        // Seed 0 places one initial seed per blob; mini-batch (like
        // Lloyd) cannot merge blobs a bad init split, so the test pins a
        // recovering seed rather than quantifying over all of them.
        let pts = blobs(50);
        let mut rng = StdRng::seed_from_u64(0);
        let r = kmeans_minibatch(
            &pts,
            KmeansConfig::new(3),
            MiniBatchConfig::default().batch_size(64).iterations(40),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        assert!(r.cluster_sizes().iter().all(|&s| s > 0));
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![50, 50, 50]);
    }

    #[test]
    fn variant_dispatch_lloyd_is_exactly_kmeans() {
        let pts = blobs(20);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let via_variant = kmeans_variant(
            &pts,
            KmeansConfig::new(3),
            &KmeansVariant::Lloyd,
            &Initializer::RandomRepresentative,
            &mut rng_a,
        )
        .unwrap();
        let direct = crate::kmeans(
            &pts,
            KmeansConfig::new(3),
            &Initializer::RandomRepresentative,
            &mut rng_b,
        )
        .unwrap();
        assert_eq!(via_variant, direct);
    }

    #[test]
    fn zero_iterations_still_yields_a_valid_partition() {
        let pts = blobs(10);
        let mut rng = StdRng::seed_from_u64(4);
        let r = kmeans_minibatch(
            &pts,
            KmeansConfig::new(4),
            MiniBatchConfig::default().batch_size(8).iterations(0),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.assignments().len(), pts.len());
        assert!(r.cluster_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn too_few_points_is_an_error() {
        let pts = FeatureMatrix::from_rows(&[vec![1.0]]);
        let mut rng = StdRng::seed_from_u64(0);
        let err = kmeans_minibatch(
            &pts,
            KmeansConfig::new(3),
            MiniBatchConfig::default(),
            &Initializer::RandomRepresentative,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, KmeansError::TooFewPoints { points: 1, k: 3 });
    }

    #[test]
    #[should_panic(expected = "non-empty batch")]
    fn zero_batch_rejected() {
        let _ = MiniBatchConfig::default().batch_size(0);
    }
}
