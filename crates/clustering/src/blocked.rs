//! Cache-blocked nearest-center scan over [`CenterTiles`].
//!
//! This is the raw-speed replacement for the row-major `scan_point`
//! kernel: the centers are held in the lane-transposed tile layout from
//! [`ecg_coords::tiles`], so one pass over a point keeps [`LANE_WIDTH`]
//! per-center accumulators live in registers and lets the compiler
//! vectorize the inner loop *across centers* without intrinsics. The
//! whole tile block stays resident in L1/L2 while the point stream is
//! blocked over it, which is what moves the kernel from memory-bound to
//! FLOP-bound at bench scale.
//!
//! **Bit-exactness contract.** For every `(point, center)` pair the
//! accumulator performs the same additions in the same (coordinate-
//! ascending) order as the scalar `sq_l2` left fold, and the best/second
//! selection visits centers in ascending index order with strict `<`
//! comparisons — so [`BlockedCenters::scan`] returns exactly what the
//! naive scan returns, ties and all. The Hamerly-pruned K-means and the
//! mini-batch variant both ride on this kernel, and the proptest suite
//! pins `blocked == pruned == kmeans_reference` down to the bit.

use ecg_coords::{CenterTiles, FeatureMatrix, LANE_WIDTH};

/// Centers staged for blocked scanning. Build once per clustering run,
/// [`refill`](BlockedCenters::refill) after each center update.
#[derive(Debug, Clone)]
pub struct BlockedCenters {
    tiles: CenterTiles,
}

impl BlockedCenters {
    /// Stages `centers` into the tile layout.
    pub fn new(centers: &FeatureMatrix) -> Self {
        BlockedCenters {
            tiles: CenterTiles::new(centers),
        }
    }

    /// Re-stages moved centers, reusing the tile allocation.
    ///
    /// # Panics
    ///
    /// Panics if the center dimension changed since construction.
    pub fn refill(&mut self, centers: &FeatureMatrix) {
        self.tiles.refill(centers);
    }

    /// Number of centers staged.
    pub fn centers(&self) -> usize {
        self.tiles.centers()
    }

    /// Full scan of `p` against every center: `(best index, best squared
    /// distance, second-best squared distance)`. Ties break to the lower
    /// center index. Bit-identical to the naive row-major scan (see the
    /// module docs).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `p` has the wrong dimension.
    #[inline]
    pub fn scan(&self, p: &[f64]) -> (usize, f64, f64) {
        debug_assert_eq!(p.len(), self.tiles.dim());
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        let mut second_d = f64::INFINITY;
        for t in 0..self.tiles.tile_count() {
            let tile = self.tiles.tile(t);
            let lanes = self.tiles.lanes_in_tile(t);
            // One accumulator per lane; the inner loop runs the full
            // fixed width so it vectorizes — padding lanes accumulate
            // against zeros and are simply never read back.
            let mut acc = [0.0f64; LANE_WIDTH];
            for (d, &pv) in p.iter().enumerate() {
                let row = &tile[d * LANE_WIDTH..(d + 1) * LANE_WIDTH];
                for (a, &cv) in acc.iter_mut().zip(row) {
                    let diff = pv - cv;
                    *a += diff * diff;
                }
            }
            // Ascending center order, strict comparisons: identical
            // tie-breaking to the scalar scan.
            for (lane, &d2) in acc.iter().take(lanes).enumerate() {
                if d2 < best_d {
                    second_d = best_d;
                    best_d = d2;
                    best = t * LANE_WIDTH + lane;
                } else if d2 < second_d {
                    second_d = d2;
                }
            }
        }
        (best, best_d, second_d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::sq_l2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The scalar oracle the blocked kernel must match bit for bit.
    fn naive_scan(p: &[f64], centers: &FeatureMatrix) -> (usize, f64, f64) {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        let mut second_d = f64::INFINITY;
        for (c, center) in centers.iter_rows().enumerate() {
            let d = sq_l2(p, center);
            if d < best_d {
                second_d = best_d;
                best_d = d;
                best = c;
            } else if d < second_d {
                second_d = d;
            }
        }
        (best, best_d, second_d)
    }

    fn assert_bit_equal(points: &FeatureMatrix, centers: &FeatureMatrix, label: &str) {
        let blocked = BlockedCenters::new(centers);
        for (i, p) in points.iter_rows().enumerate() {
            let (nb, nd, ns) = naive_scan(p, centers);
            let (bb, bd, bs) = blocked.scan(p);
            assert_eq!(nb, bb, "{label}: best index, point {i}");
            assert_eq!(nd.to_bits(), bd.to_bits(), "{label}: best d2, point {i}");
            assert_eq!(ns.to_bits(), bs.to_bits(), "{label}: second d2, point {i}");
        }
    }

    #[test]
    fn matches_naive_scan_across_shapes() {
        let mut gen = StdRng::seed_from_u64(0xB10C);
        // Spans partial tiles (k < 8), exact tile multiples, and many
        // tiles; dims from 1 to 24.
        for &(n, k, dim) in &[
            (20usize, 1usize, 3usize),
            (50, 7, 4),
            (50, 8, 4),
            (50, 9, 4),
            (64, 16, 1),
            (40, 23, 24),
        ] {
            let rand_matrix = |gen: &mut StdRng, rows: usize| {
                let mut m = FeatureMatrix::new(dim);
                for _ in 0..rows {
                    let row: Vec<f64> = (0..dim).map(|_| gen.gen_range(-50.0..50.0)).collect();
                    m.push_row(&row);
                }
                m
            };
            let points = rand_matrix(&mut gen, n);
            let centers = rand_matrix(&mut gen, k);
            assert_bit_equal(&points, &centers, &format!("n={n} k={k} dim={dim}"));
        }
    }

    #[test]
    fn exact_ties_break_to_the_lower_index() {
        // Duplicate centers across a tile boundary: distances are exactly
        // equal, so the winner must be the lower index in both kernels.
        let row = vec![3.0, -1.0];
        let mut centers = FeatureMatrix::new(2);
        for _ in 0..10 {
            centers.push_row(&row);
        }
        let points = FeatureMatrix::from_rows(&[vec![0.0, 0.0], row.clone()]);
        assert_bit_equal(&points, &centers, "all-duplicate centers");
        let blocked = BlockedCenters::new(&centers);
        let (best, best_d, second_d) = blocked.scan(points.row(1));
        assert_eq!(best, 0);
        assert_eq!(best_d, 0.0);
        assert_eq!(second_d, 0.0);
    }

    #[test]
    fn refill_follows_center_movement() {
        let mut centers = FeatureMatrix::from_rows(&[vec![0.0], vec![10.0]]);
        let mut blocked = BlockedCenters::new(&centers);
        assert_eq!(blocked.scan(&[1.0]).0, 0);
        centers.row_mut(0)[0] = 100.0;
        blocked.refill(&centers);
        assert_eq!(blocked.scan(&[1.0]).0, 1);
        assert_eq!(blocked.centers(), 2);
    }
}
