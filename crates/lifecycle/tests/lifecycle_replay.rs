//! End-to-end: supervisor timelines feed epoch-spanning replay.
//!
//! The acceptance contract of the lifecycle subsystem: a fault-free,
//! zero-churn stream produces zero re-formations and a replay
//! bit-identical to serving the static `GroupMap` for the whole trace;
//! a churny stream produces a multi-epoch timeline whose replay is
//! byte-identical across thread counts.

use ecg_coords::ProbeConfig;
use ecg_core::SchemeConfig;
use ecg_faults::FaultPlan;
use ecg_lifecycle::{FormationSupervisor, ReformPolicy, SupervisorConfig};
use ecg_replay::{replay_epochs, replay_sharded, ReplayConfig, ReplayEpoch};
use ecg_sim::FaultSchedule;
use ecg_topology::{fixtures::paper_figure1, CacheId, EdgeNetwork};
use ecg_workload::{generate_updates, merge_streams, CatalogConfig, RequestConfig, TraceEvent};
use rand::{rngs::StdRng, SeedableRng};

fn fixture() -> (EdgeNetwork, ecg_workload::DocumentCatalog, Vec<TraceEvent>) {
    let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
    let mut rng = StdRng::seed_from_u64(21);
    let catalog = CatalogConfig::default().documents(100).generate(&mut rng);
    let requests = RequestConfig::default()
        .rate_per_sec_per_cache(4.0)
        .generate(&catalog, 6, 60_000.0, &mut rng);
    let updates = generate_updates(&catalog, 60_000.0, &mut rng);
    let trace = merge_streams(&requests, &updates);
    (network, catalog, trace)
}

fn supervisor(policy: ReformPolicy) -> FormationSupervisor {
    FormationSupervisor::new(
        SupervisorConfig::new(SchemeConfig::sl(3).landmarks(3).plset_multiplier(2))
            .probe(ProbeConfig::noiseless())
            .policy(policy),
    )
}

fn to_replay_epochs(timeline: &ecg_lifecycle::FormationTimeline) -> Vec<ReplayEpoch> {
    timeline
        .epoch_spans()
        .map(|(start, groups)| ReplayEpoch::new(start, groups.clone()))
        .collect()
}

#[test]
fn zero_churn_timeline_replays_identically_to_static_groups() {
    let (network, catalog, trace) = fixture();
    let schedule = FaultSchedule::new();
    let mut rng = StdRng::seed_from_u64(7);
    let timeline = supervisor(ReformPolicy::balanced())
        .run(&network, &schedule, 60_000.0, &mut rng)
        .expect("quiet run succeeds");
    assert_eq!(timeline.reformations(), 0);
    assert_eq!(timeline.epochs().len(), 1);

    let config = ReplayConfig::new();
    let epochs = to_replay_epochs(&timeline);
    let lifecycle =
        replay_epochs(&network, &epochs, &catalog, &trace, &config).expect("epoch replay succeeds");
    let static_groups = replay_sharded(
        &network,
        &timeline.epochs()[0].groups,
        &catalog,
        &trace,
        &config,
    )
    .expect("static replay succeeds");
    assert_eq!(
        lifecycle, static_groups,
        "one lifecycle epoch must be bit-identical to a static replay"
    );
}

#[test]
fn churny_timeline_replay_is_thread_invariant() {
    let (network, catalog, trace) = fixture();
    let schedule = FaultPlan::new()
        .crash(CacheId(0), 11_000.0, 30_000.0)
        .retire(CacheId(3), 21_000.0)
        .schedule();
    let mut rng = StdRng::seed_from_u64(11);
    let timeline = supervisor(ReformPolicy::eager())
        .run(&network, &schedule, 60_000.0, &mut rng)
        .expect("churny run succeeds");
    assert!(timeline.epochs().len() > 1, "churn must open epochs");

    let config = ReplayConfig::new().schedule(schedule);
    let epochs = to_replay_epochs(&timeline);
    ecg_par::set_max_threads(Some(1));
    let single = replay_epochs(&network, &epochs, &catalog, &trace, &config);
    ecg_par::set_max_threads(Some(4));
    let multi = replay_epochs(&network, &epochs, &catalog, &trace, &config);
    ecg_par::set_max_threads(None);
    assert_eq!(
        single.expect("1-thread replay succeeds"),
        multi.expect("4-thread replay succeeds"),
        "epoch replay of a lifecycle timeline must not depend on threads"
    );
}

#[test]
fn supervisor_is_thread_count_invariant() {
    // The supervisor itself is serial; pin threads anyway and check the
    // rendered timeline bytes, since formation runs probe in parallel.
    let (network, _, _) = fixture();
    let schedule = FaultPlan::new()
        .crash(CacheId(1), 12_000.0, 25_000.0)
        .retire(CacheId(4), 31_000.0)
        .schedule();
    let run = || {
        let mut rng = StdRng::seed_from_u64(3);
        supervisor(ReformPolicy::eager())
            .run(&network, &schedule, 60_000.0, &mut rng)
            .expect("run succeeds")
            .to_json()
    };
    ecg_par::set_max_threads(Some(1));
    let single = run();
    ecg_par::set_max_threads(Some(8));
    let multi = run();
    ecg_par::set_max_threads(None);
    assert_eq!(single, multi, "timeline bytes must not depend on threads");
}
