//! The re-form-or-repair decision policy.
//!
//! After every maintenance window the supervisor summarizes what
//! happened into [`WindowSignals`] and asks a [`ReformPolicy`] what to
//! do about it. The policy is a pure, typed decision function with
//! three stabilizers layered over its thresholds:
//!
//! * **hysteresis** — drift must climb past `drift_enter` to arm a
//!   re-formation and fall back below `drift_exit` to disarm it, so a
//!   grouping hovering around one threshold doesn't flap;
//! * **cooldown** — after any re-formation the next few windows demote
//!   further re-formations to repairs, giving the new grouping time to
//!   prove itself;
//! * **budget** — a rolling cap on re-formations per span of windows,
//!   bounding worst-case formation traffic under pathological churn.
//!
//! Demotions never drop work on the floor: a demoted decision becomes a
//! [`ReformDecision::Repair`], and because hysteresis stays latched the
//! re-formation fires as soon as cooldown and budget allow.

use std::collections::VecDeque;

/// What the supervisor does at the end of a maintenance window, in
/// increasing order of cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReformDecision {
    /// The grouping is healthy: do nothing.
    Hold,
    /// Re-seat every active cache against the current centers (cheap,
    /// no re-clustering).
    Repair,
    /// Re-cluster only the degraded groups, reusing surviving
    /// landmarks ([`ecg_core::GroupMaintainer::reform_partial`]).
    PartialReform,
    /// Run the full formation scheme from scratch.
    FullReform,
}

impl ReformDecision {
    /// Stable lowercase name, used in JSON and trace events.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReformDecision::Hold => "hold",
            ReformDecision::Repair => "repair",
            ReformDecision::PartialReform => "partial_reform",
            ReformDecision::FullReform => "full_reform",
        }
    }
}

impl std::fmt::Display for ReformDecision {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.write_str(self.as_str())
    }
}

/// Degradation signals summarizing one maintenance window, fed to
/// [`ReformPolicy::decide`] and recorded verbatim in the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSignals {
    /// Interaction-cost drift ratio at the window end (`1.0` = at the
    /// formation baseline).
    pub drift: f64,
    /// Membership removals applied this window.
    pub retirements: u64,
    /// Of those, how many took a formation-time landmark with them
    /// ([`ecg_core::RetireOutcome`]`::was_landmark`).
    pub landmark_retirements: u64,
    /// Recoveries re-admitted this window.
    pub readmissions: u64,
    /// Retirements refused because they would have emptied a group —
    /// membership pressure in the
    /// [`ecg_faults::MembershipPressure`] sense.
    pub skipped_retirements: u64,
    /// Formation-time landmarks whose cache is currently down or
    /// retired.
    pub dead_landmarks: usize,
    /// Caches currently out of service (down or retired).
    pub down_caches: usize,
    /// Whether the most recent full formation reported a degraded
    /// [`ecg_core::FormationHealth`] (gave-up probes, masked cells,
    /// quarantined caches).
    pub health_degraded: bool,
}

impl Default for WindowSignals {
    /// A perfectly quiet window: drift at baseline, every counter zero.
    fn default() -> Self {
        WindowSignals {
            drift: 1.0,
            retirements: 0,
            landmark_retirements: 0,
            readmissions: 0,
            skipped_retirements: 0,
            dead_landmarks: 0,
            down_caches: 0,
            health_degraded: false,
        }
    }
}

/// What [`ReformPolicy::decide`] concluded, including whether a more
/// expensive action was demoted by cooldown or budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyVerdict {
    /// The action to take.
    pub decision: ReformDecision,
    /// Set when cooldown or budget demoted a re-formation to
    /// [`ReformDecision::Repair`]; holds what the policy *wanted*.
    pub demoted_from: Option<ReformDecision>,
}

/// Thresholds and stabilizers for the re-form-or-repair decision.
///
/// Build from a preset ([`ReformPolicy::balanced`],
/// [`ReformPolicy::eager`], [`ReformPolicy::repair_only`],
/// [`ReformPolicy::hold_only`]) and adjust with the chained setters.
/// The policy itself is immutable; per-run mutable state (hysteresis
/// latch, cooldown and budget counters) lives in the [`PolicyState`]
/// the supervisor owns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReformPolicy {
    drift_enter: f64,
    drift_exit: f64,
    full_reform_drift: f64,
    landmark_threshold: u64,
    skip_threshold: u64,
    cooldown_windows: u32,
    reform_budget: u32,
    budget_span_windows: u32,
    react_to_health: bool,
}

impl Default for ReformPolicy {
    fn default() -> Self {
        Self::balanced()
    }
}

impl ReformPolicy {
    /// The default production posture: partial re-form at 1.5× drift
    /// (disarm at 1.2×), full re-form at 2.5×, react to any landmark
    /// loss or skipped retirement, two-window cooldown, at most three
    /// re-formations per twelve windows.
    pub fn balanced() -> Self {
        ReformPolicy {
            drift_enter: 1.5,
            drift_exit: 1.2,
            full_reform_drift: 2.5,
            landmark_threshold: 1,
            skip_threshold: 1,
            cooldown_windows: 2,
            reform_budget: 3,
            budget_span_windows: 12,
            react_to_health: true,
        }
    }

    /// Trigger-happy: low thresholds, no cooldown, generous budget.
    /// Keeps groupings tight at the cost of formation traffic.
    pub fn eager() -> Self {
        ReformPolicy {
            drift_enter: 1.2,
            drift_exit: 1.05,
            full_reform_drift: 1.8,
            landmark_threshold: 1,
            skip_threshold: 1,
            cooldown_windows: 0,
            reform_budget: 6,
            budget_span_windows: 6,
            react_to_health: true,
        }
    }

    /// Never re-forms: repairs whenever drift leaves the baseline band,
    /// ignores every re-formation trigger. The paper's incremental-
    /// maintenance-only baseline.
    pub fn repair_only() -> Self {
        ReformPolicy {
            drift_enter: f64::INFINITY,
            drift_exit: 1.05,
            full_reform_drift: f64::INFINITY,
            landmark_threshold: u64::MAX,
            skip_threshold: u64::MAX,
            cooldown_windows: 0,
            reform_budget: 0,
            budget_span_windows: 1,
            react_to_health: false,
        }
    }

    /// Never acts at all: the static-formation baseline.
    pub fn hold_only() -> Self {
        ReformPolicy {
            drift_enter: f64::INFINITY,
            drift_exit: f64::INFINITY,
            full_reform_drift: f64::INFINITY,
            landmark_threshold: u64::MAX,
            skip_threshold: u64::MAX,
            cooldown_windows: 0,
            reform_budget: 0,
            budget_span_windows: 1,
            react_to_health: false,
        }
    }

    /// Looks up a preset by its experiment name: `static`, `repair`,
    /// `eager`, or `balanced`.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "static" | "hold" => Some(Self::hold_only()),
            "repair" => Some(Self::repair_only()),
            "eager" => Some(Self::eager()),
            "balanced" => Some(Self::balanced()),
            _ => None,
        }
    }

    /// Sets the hysteresis band: re-formation arms at `enter`× drift
    /// and disarms below `exit`×.
    ///
    /// # Panics
    ///
    /// Panics unless `1.0 <= exit <= enter` (infinities allowed).
    pub fn drift_band(mut self, enter: f64, exit: f64) -> Self {
        assert!(
            exit >= 1.0 && enter >= exit && !enter.is_nan(),
            "need 1 <= exit <= enter"
        );
        self.drift_enter = enter;
        self.drift_exit = exit;
        self
    }

    /// Sets the drift ratio above which a *full* re-formation is
    /// preferred over a partial one.
    ///
    /// # Panics
    ///
    /// Panics if `drift` is below 1 or NaN.
    pub fn full_reform_drift(mut self, drift: f64) -> Self {
        assert!(drift >= 1.0 && !drift.is_nan(), "drift must be >= 1");
        self.full_reform_drift = drift;
        self
    }

    /// Sets how many landmark losses (retired landmarks plus currently
    /// dead ones) in a window trigger a partial re-formation.
    pub fn landmark_threshold(mut self, count: u64) -> Self {
        self.landmark_threshold = count;
        self
    }

    /// Sets how many skipped retirements in a window trigger a partial
    /// re-formation.
    pub fn skip_threshold(mut self, count: u64) -> Self {
        self.skip_threshold = count;
        self
    }

    /// Sets the post-re-formation cooldown, in windows.
    pub fn cooldown_windows(mut self, windows: u32) -> Self {
        self.cooldown_windows = windows;
        self
    }

    /// Caps re-formations at `budget` per rolling `span` windows.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn reform_budget(mut self, budget: u32, span: u32) -> Self {
        assert!(span > 0, "budget span must be positive");
        self.reform_budget = budget;
        self.budget_span_windows = span;
        self
    }

    /// Fresh per-run mutable state for this policy.
    pub fn state(&self) -> PolicyState {
        PolicyState {
            policy: *self,
            latched: false,
            cooldown_left: 0,
            window: 0,
            reform_windows: VecDeque::new(),
        }
    }
}

/// The mutable half of a policy: hysteresis latch, cooldown counter,
/// and the rolling re-formation budget window.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyState {
    policy: ReformPolicy,
    latched: bool,
    cooldown_left: u32,
    window: u64,
    reform_windows: VecDeque<u64>,
}

impl PolicyState {
    /// Decides what to do about one window's signals. Call exactly once
    /// per window: the call advances the cooldown and budget clocks.
    pub fn decide(&mut self, s: &WindowSignals) -> PolicyVerdict {
        let p = &self.policy;
        self.window += 1;
        // Expire budget entries that fell out of the rolling span.
        while let Some(&w) = self.reform_windows.front() {
            if self.window - w >= u64::from(p.budget_span_windows) {
                self.reform_windows.pop_front();
            } else {
                break;
            }
        }

        // Hysteresis latch.
        if s.drift >= p.drift_enter {
            self.latched = true;
        } else if s.drift <= p.drift_exit {
            self.latched = false;
        }

        let landmark_pressure = s
            .landmark_retirements
            .saturating_add(s.dead_landmarks as u64);
        let desired = if s.drift >= p.full_reform_drift {
            ReformDecision::FullReform
        } else if self.latched
            || landmark_pressure >= p.landmark_threshold
            || s.skipped_retirements >= p.skip_threshold
            || (p.react_to_health && s.health_degraded)
        {
            ReformDecision::PartialReform
        } else if s.drift > p.drift_exit {
            ReformDecision::Repair
        } else {
            ReformDecision::Hold
        };

        let verdict = if desired >= ReformDecision::PartialReform {
            let cooling = self.cooldown_left > 0;
            let over_budget = self.reform_windows.len() >= p.reform_budget as usize;
            if cooling || over_budget {
                PolicyVerdict {
                    decision: ReformDecision::Repair,
                    demoted_from: Some(desired),
                }
            } else {
                self.reform_windows.push_back(self.window);
                self.cooldown_left = p.cooldown_windows;
                PolicyVerdict {
                    decision: desired,
                    demoted_from: None,
                }
            }
        } else {
            PolicyVerdict {
                decision: desired,
                demoted_from: None,
            }
        };
        if verdict.decision < ReformDecision::PartialReform {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
        }
        verdict
    }

    /// Whether the drift hysteresis is currently latched.
    pub fn is_latched(&self) -> bool {
        self.latched
    }

    /// The policy this state belongs to.
    pub fn policy(&self) -> &ReformPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drift(d: f64) -> WindowSignals {
        WindowSignals {
            drift: d,
            ..WindowSignals::default()
        }
    }

    #[test]
    fn quiet_windows_hold() {
        let mut state = ReformPolicy::balanced().state();
        for _ in 0..20 {
            let v = state.decide(&WindowSignals::default());
            assert_eq!(v.decision, ReformDecision::Hold);
            assert_eq!(v.demoted_from, None);
        }
    }

    #[test]
    fn hysteresis_latches_and_releases() {
        let mut state = ReformPolicy::balanced().cooldown_windows(0).state();
        assert_eq!(state.decide(&drift(1.3)).decision, ReformDecision::Repair);
        assert!(!state.is_latched());
        assert_eq!(
            state.decide(&drift(1.6)).decision,
            ReformDecision::PartialReform
        );
        assert!(state.is_latched());
        // Still above exit: stays armed even though below enter.
        assert_eq!(
            state.decide(&drift(1.3)).decision,
            ReformDecision::PartialReform
        );
        // Below exit: disarms, and 1.1 <= exit means Hold.
        assert_eq!(state.decide(&drift(1.1)).decision, ReformDecision::Hold);
        assert!(!state.is_latched());
    }

    #[test]
    fn extreme_drift_goes_straight_to_full_reform() {
        let mut state = ReformPolicy::balanced().state();
        assert_eq!(
            state.decide(&drift(3.0)).decision,
            ReformDecision::FullReform
        );
    }

    #[test]
    fn cooldown_demotes_to_repair() {
        let mut state = ReformPolicy::balanced().state();
        assert_eq!(
            state.decide(&drift(1.6)).decision,
            ReformDecision::PartialReform
        );
        // Two cooldown windows: re-formations demote, hysteresis keeps
        // wanting one.
        for _ in 0..2 {
            let v = state.decide(&drift(1.6));
            assert_eq!(v.decision, ReformDecision::Repair);
            assert_eq!(v.demoted_from, Some(ReformDecision::PartialReform));
        }
        // Cooldown over: the latched re-formation finally fires.
        assert_eq!(
            state.decide(&drift(1.6)).decision,
            ReformDecision::PartialReform
        );
    }

    #[test]
    fn budget_caps_reformations_per_span() {
        let mut state = ReformPolicy::balanced()
            .cooldown_windows(0)
            .reform_budget(2, 6)
            .state();
        let mut reforms = 0;
        let mut demoted = 0;
        for _ in 0..6 {
            let v = state.decide(&drift(1.8));
            match v.decision {
                ReformDecision::PartialReform => reforms += 1,
                ReformDecision::Repair => {
                    assert_eq!(v.demoted_from, Some(ReformDecision::PartialReform));
                    demoted += 1;
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(reforms, 2, "budget of 2 per 6 windows");
        assert_eq!(demoted, 4);
        // The span rolls: later windows regain budget.
        let mut fired_again = false;
        for _ in 0..6 {
            if state.decide(&drift(1.8)).decision == ReformDecision::PartialReform {
                fired_again = true;
            }
        }
        assert!(fired_again, "rolling span must free budget");
    }

    #[test]
    fn landmark_and_skip_pressure_trigger_partial_reform() {
        let mut state = ReformPolicy::balanced().state();
        let v = state.decide(&WindowSignals {
            landmark_retirements: 1,
            ..WindowSignals::default()
        });
        assert_eq!(v.decision, ReformDecision::PartialReform);

        let mut state = ReformPolicy::balanced().state();
        let v = state.decide(&WindowSignals {
            skipped_retirements: 1,
            ..WindowSignals::default()
        });
        assert_eq!(v.decision, ReformDecision::PartialReform);

        let mut state = ReformPolicy::balanced().state();
        let v = state.decide(&WindowSignals {
            dead_landmarks: 2,
            ..WindowSignals::default()
        });
        assert_eq!(v.decision, ReformDecision::PartialReform);

        let mut state = ReformPolicy::balanced().state();
        let v = state.decide(&WindowSignals {
            health_degraded: true,
            ..WindowSignals::default()
        });
        assert_eq!(v.decision, ReformDecision::PartialReform);
    }

    #[test]
    fn baseline_presets_never_reform() {
        let hot = WindowSignals {
            drift: 10.0,
            landmark_retirements: 5,
            skipped_retirements: 5,
            dead_landmarks: 3,
            health_degraded: true,
            ..WindowSignals::default()
        };
        let mut hold = ReformPolicy::hold_only().state();
        let mut repair = ReformPolicy::repair_only().state();
        for _ in 0..10 {
            assert_eq!(hold.decide(&hot).decision, ReformDecision::Hold);
            assert_eq!(repair.decide(&hot).decision, ReformDecision::Repair);
        }
    }

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(
            ReformPolicy::by_name("static"),
            Some(ReformPolicy::hold_only())
        );
        assert_eq!(
            ReformPolicy::by_name("repair"),
            Some(ReformPolicy::repair_only())
        );
        assert_eq!(ReformPolicy::by_name("eager"), Some(ReformPolicy::eager()));
        assert_eq!(
            ReformPolicy::by_name("balanced"),
            Some(ReformPolicy::balanced())
        );
        assert_eq!(ReformPolicy::by_name("yolo"), None);
    }
}
