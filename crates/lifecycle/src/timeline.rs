//! The supervisor's output: epochs, decisions, and their JSON form.
//!
//! A [`FormationTimeline`] is the complete, deterministic record of one
//! supervised run: every serving [`Epoch`] (a [`GroupMap`] with the
//! health context it was born under) and every per-window
//! [`DecisionRecord`]. Two runs with the same inputs produce equal
//! timelines, and [`FormationTimeline::to_json`] renders them to
//! byte-identical strings — the property the CI determinism matrix
//! diffs across `ECG_THREADS` settings.

use std::fmt::Write as _;

use ecg_core::FormationHealth;
use ecg_sim::GroupMap;

use crate::policy::{ReformDecision, WindowSignals};

/// One serving interval: from `start_ms` until the next epoch starts
/// (or the horizon ends), requests are routed under `groups`.
#[derive(Debug, Clone, PartialEq)]
pub struct Epoch {
    /// Simulated time this grouping started serving, ms.
    pub start_ms: f64,
    /// The serving partition (down/retired caches appear as
    /// singletons so the map always covers the full id space).
    pub groups: GroupMap,
    /// Formation-time landmark node ids backing the grouping (node 0
    /// is the origin, cache `i` is node `i + 1`).
    pub landmarks: Vec<usize>,
    /// Drift ratio right after the action that created this epoch
    /// (`1.0` when the baseline was re-anchored).
    pub drift: f64,
    /// Health report of the formation run that produced the grouping;
    /// `None` for epochs created by repair or partial re-formation
    /// (they inherit the previous formation's probing).
    pub health: Option<FormationHealth>,
}

/// What the policy decided at the end of one maintenance window, and
/// why.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Window end, ms (the instant the decision executed).
    pub window_end_ms: f64,
    /// The action actually taken.
    pub decision: ReformDecision,
    /// Set when cooldown or budget demoted a re-formation to a repair.
    pub demoted_from: Option<ReformDecision>,
    /// `true` when a partial re-formation escalated to a full one
    /// because too few landmarks survived.
    pub escalated: bool,
    /// The signals the decision was made from.
    pub signals: WindowSignals,
    /// Index of the epoch serving after this window.
    pub epoch: usize,
}

/// The complete record of one supervised formation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FormationTimeline {
    step_ms: f64,
    horizon_ms: f64,
    epochs: Vec<Epoch>,
    decisions: Vec<DecisionRecord>,
}

impl FormationTimeline {
    /// Assembles a timeline (the supervisor is the only intended
    /// caller; tests may build small ones by hand).
    pub fn new(
        step_ms: f64,
        horizon_ms: f64,
        epochs: Vec<Epoch>,
        decisions: Vec<DecisionRecord>,
    ) -> Self {
        FormationTimeline {
            step_ms,
            horizon_ms,
            epochs,
            decisions,
        }
    }

    /// The maintenance window width, ms.
    pub fn step_ms(&self) -> f64 {
        self.step_ms
    }

    /// The supervised horizon, ms.
    pub fn horizon_ms(&self) -> f64 {
        self.horizon_ms
    }

    /// The serving epochs, in time order (never empty: epoch 0 is the
    /// initial formation at time 0).
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Every per-window decision, in time order.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Counts the decisions that took `which` action.
    pub fn decision_count(&self, which: ReformDecision) -> usize {
        self.decisions
            .iter()
            .filter(|d| d.decision == which)
            .count()
    }

    /// Re-formations executed (partial + full). Zero on a fault-free,
    /// zero-churn run.
    pub fn reformations(&self) -> usize {
        self.decision_count(ReformDecision::PartialReform)
            + self.decision_count(ReformDecision::FullReform)
    }

    /// The `(start_ms, groups)` spans an epoch-spanning replay needs,
    /// in time order. Shaped so callers can glue to
    /// `ecg_replay::ReplayEpoch` without this crate depending on the
    /// replay engine.
    pub fn epoch_spans(&self) -> impl Iterator<Item = (f64, &GroupMap)> + '_ {
        self.epochs.iter().map(|e| (e.start_ms, &e.groups))
    }

    /// The worst pre-decision drift any window saw (`1.0` on a quiet
    /// run).
    pub fn max_drift(&self) -> f64 {
        self.decisions
            .iter()
            .map(|d| d.signals.drift)
            .fold(1.0, f64::max)
    }

    /// Serializes the timeline to a deterministic single-line JSON
    /// object (schema `ecg-lifecycle/v1`): fixed key order, shortest
    /// round-trip floats, byte-identical for equal timelines.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + 128 * self.decisions.len());
        out.push('{');
        let _ = write!(out, "\"schema\":\"ecg-lifecycle/v1\",");
        let _ = write!(out, "\"step_ms\":{},", f(self.step_ms));
        let _ = write!(out, "\"horizon_ms\":{},", f(self.horizon_ms));
        let _ = write!(out, "\"windows\":{},", self.decisions.len());
        let _ = write!(out, "\"epochs\":{},", self.epochs.len());
        for which in [
            ReformDecision::Hold,
            ReformDecision::Repair,
            ReformDecision::PartialReform,
            ReformDecision::FullReform,
        ] {
            let _ = write!(
                out,
                "\"{}s\":{},",
                which.as_str(),
                self.decision_count(which)
            );
        }
        let _ = write!(out, "\"max_drift\":{},", f(self.max_drift()));

        out.push_str("\"epoch_list\":[");
        for (i, e) in self.epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"start_ms\":{},", f(e.start_ms));
            out.push_str("\"groups\":[");
            for (g, members) in e.groups.groups().iter().enumerate() {
                if g > 0 {
                    out.push(',');
                }
                let ids: Vec<String> = members.iter().map(|c| c.index().to_string()).collect();
                let _ = write!(out, "[{}]", ids.join(","));
            }
            out.push_str("],");
            let lms: Vec<String> = e.landmarks.iter().map(|l| l.to_string()).collect();
            let _ = write!(out, "\"landmarks\":[{}],", lms.join(","));
            let _ = write!(out, "\"drift\":{},", f(e.drift));
            match &e.health {
                Some(h) => {
                    let _ = write!(
                        out,
                        "\"health\":{{\"probe_gave_up\":{},\"dead_landmarks\":{},\
                         \"landmark_failovers\":{},\"masked_cells\":{},\"quarantined\":{}}}",
                        h.probe_gave_up,
                        h.dead_landmarks.len(),
                        h.landmark_failovers,
                        h.masked_cells,
                        h.quarantined.len()
                    );
                }
                None => out.push_str("\"health\":null"),
            }
            out.push('}');
        }
        out.push_str("],");

        out.push_str("\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t\":{},", f(d.window_end_ms));
            let _ = write!(out, "\"decision\":\"{}\",", d.decision.as_str());
            match d.demoted_from {
                Some(from) => {
                    let _ = write!(out, "\"demoted_from\":\"{}\",", from.as_str());
                }
                None => out.push_str("\"demoted_from\":null,"),
            }
            let _ = write!(out, "\"escalated\":{},", d.escalated);
            let s = &d.signals;
            let _ = write!(
                out,
                "\"signals\":{{\"drift\":{},\"retirements\":{},\"landmark_retirements\":{},\
                 \"readmissions\":{},\"skipped_retirements\":{},\"dead_landmarks\":{},\
                 \"down_caches\":{},\"health_degraded\":{}}},",
                f(s.drift),
                s.retirements,
                s.landmark_retirements,
                s.readmissions,
                s.skipped_retirements,
                s.dead_landmarks,
                s.down_caches,
                s.health_degraded
            );
            let _ = write!(out, "\"epoch\":{}}}", d.epoch);
        }
        out.push_str("]}");
        out
    }
}

/// Formats a float as a JSON number (finite values only in practice;
/// non-finite become `null`). Mirrors the convention of
/// `ecg_faults::report_to_json`.
fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FormationTimeline {
        let epoch = Epoch {
            start_ms: 0.0,
            groups: GroupMap::one_group(4),
            landmarks: vec![1, 3],
            drift: 1.0,
            health: Some(FormationHealth::default()),
        };
        let second = Epoch {
            start_ms: 10_000.0,
            groups: GroupMap::singletons(4),
            landmarks: vec![1],
            drift: 1.0,
            health: None,
        };
        let decisions = vec![
            DecisionRecord {
                window_end_ms: 10_000.0,
                decision: ReformDecision::PartialReform,
                demoted_from: None,
                escalated: false,
                signals: WindowSignals {
                    drift: 1.7,
                    retirements: 2,
                    ..WindowSignals::default()
                },
                epoch: 1,
            },
            DecisionRecord {
                window_end_ms: 20_000.0,
                decision: ReformDecision::Hold,
                demoted_from: Some(ReformDecision::FullReform),
                escalated: false,
                signals: WindowSignals::default(),
                epoch: 1,
            },
        ];
        FormationTimeline::new(10_000.0, 20_000.0, vec![epoch, second], decisions)
    }

    #[test]
    fn accessors_summarize_the_run() {
        let t = sample();
        assert_eq!(t.epochs().len(), 2);
        assert_eq!(t.decisions().len(), 2);
        assert_eq!(t.decision_count(ReformDecision::PartialReform), 1);
        assert_eq!(t.decision_count(ReformDecision::Hold), 1);
        assert_eq!(t.reformations(), 1);
        assert_eq!(t.max_drift(), 1.7);
        let spans: Vec<f64> = t.epoch_spans().map(|(s, _)| s).collect();
        assert_eq!(spans, vec![0.0, 10_000.0]);
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let t = sample();
        let json = t.to_json();
        assert_eq!(json, t.clone().to_json(), "byte-identical re-render");
        assert!(json.starts_with("{\"schema\":\"ecg-lifecycle/v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",}") && !json.contains(",]"));
        assert!(json.contains("\"partial_reforms\":1"));
        assert!(json.contains("\"holds\":1"));
        assert!(json.contains("\"max_drift\":1.7"));
        assert!(json.contains("\"demoted_from\":\"full_reform\""));
        assert!(json.contains("\"health\":null"));
        assert!(json.contains("\"groups\":[[0,1,2,3]]"));
    }
}
