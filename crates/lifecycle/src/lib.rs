//! Continuous formation-as-a-service for edge cache groups.
//!
//! The paper's scheme forms groups once. This crate keeps them formed:
//! a deterministic [`FormationSupervisor`] advances a virtual clock
//! over a fault schedule, applies each window's crashes, recoveries,
//! and retirements through [`ecg_core::GroupMaintainer`], and asks a
//! typed [`ReformPolicy`] what the degradation warrants —
//! [`ReformDecision::Hold`], a cheap [`ReformDecision::Repair`]
//! re-seating pass, a [`ReformDecision::PartialReform`] of only the
//! degraded groups, or a [`ReformDecision::FullReform`] from scratch.
//! The policy layers hysteresis, cooldown, and a rolling re-formation
//! budget over real signals: interaction-cost drift, landmark loss,
//! membership pressure, and the [`ecg_core::FormationHealth`] of the
//! last formation run.
//!
//! The result is a [`FormationTimeline`]: every serving [`Epoch`] and
//! every per-window [`DecisionRecord`], byte-identically serializable
//! via [`FormationTimeline::to_json`]. The previous grouping serves
//! until its replacement exists — there is never a formation gap —
//! and [`FormationTimeline::epoch_spans`] feeds straight into
//! `ecg_replay`'s epoch-spanning replay.
//!
//! # Examples
//!
//! A quiet network needs exactly one formation:
//!
//! ```
//! use ecg_coords::ProbeConfig;
//! use ecg_core::SchemeConfig;
//! use ecg_lifecycle::{FormationSupervisor, SupervisorConfig};
//! use ecg_sim::FaultSchedule;
//! use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
//! let supervisor = FormationSupervisor::new(
//!     SupervisorConfig::new(SchemeConfig::sl(3).landmarks(3))
//!         .probe(ProbeConfig::noiseless()),
//! );
//! let mut rng = StdRng::seed_from_u64(7);
//! let timeline =
//!     supervisor.run(&network, &FaultSchedule::new(), 60_000.0, &mut rng)?;
//! assert_eq!(timeline.epochs().len(), 1);
//! assert_eq!(timeline.reformations(), 0);
//! # Ok::<(), ecg_lifecycle::LifecycleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod policy;
pub mod supervisor;
pub mod timeline;

pub use policy::{PolicyState, PolicyVerdict, ReformDecision, ReformPolicy, WindowSignals};
pub use supervisor::{FormationSupervisor, LifecycleError, SupervisorConfig};
pub use timeline::{DecisionRecord, Epoch, FormationTimeline};
