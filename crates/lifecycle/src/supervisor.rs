//! The supervisor: a deterministic window loop over churn and faults.
//!
//! [`FormationSupervisor::run`] forms groups once at time zero, then
//! advances a virtual clock in fixed maintenance windows over a
//! [`FaultSchedule`]. Each window applies the membership events that
//! fired (crashes retire, recoveries re-admit), summarizes the damage
//! into [`WindowSignals`], asks the [`ReformPolicy`] what to do, and
//! executes the verdict — repair, partial re-formation (escalating to
//! full when too few landmarks survive), full re-formation, or nothing.
//! The previous grouping keeps serving until the moment a replacement
//! exists, so there is never a formation gap; every serving interval
//! becomes an [`Epoch`] in the returned [`FormationTimeline`].
//!
//! Everything is serial and seeded: the same network, schedule,
//! horizon, and RNG seed produce an identical timeline regardless of
//! `ECG_THREADS`.

use std::collections::BTreeSet;
use std::fmt;

use ecg_coords::ProbeConfig;
use ecg_core::{
    FormationHealth, GfCoordinator, GroupMaintainer, MaintenanceError, SchemeConfig, SchemeError,
};
use ecg_faults::FormationFaults;
use ecg_obs::Obs;
use ecg_sim::{FaultError, FaultKind, FaultSchedule, GroupMap};
use ecg_topology::{CacheId, EdgeNetwork};
use rand::Rng;

use crate::policy::{ReformDecision, ReformPolicy, WindowSignals};
use crate::timeline::{DecisionRecord, Epoch, FormationTimeline};

/// Error from a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleError {
    /// The maintenance window width is not positive and finite.
    BadStep(f64),
    /// The supervision horizon is not positive and finite.
    BadHorizon(f64),
    /// The fault schedule references caches or times outside the run.
    Fault(FaultError),
    /// A formation run failed.
    Scheme(SchemeError),
    /// A maintenance operation failed structurally (expected churn
    /// races are absorbed, never surfaced).
    Maintenance(MaintenanceError),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::BadStep(ms) => {
                write!(f, "maintenance step must be positive and finite, got {ms}")
            }
            LifecycleError::BadHorizon(ms) => {
                write!(f, "horizon must be positive and finite, got {ms}")
            }
            LifecycleError::Fault(e) => write!(f, "invalid fault schedule: {e}"),
            LifecycleError::Scheme(e) => write!(f, "formation failed: {e}"),
            LifecycleError::Maintenance(e) => write!(f, "maintenance failed: {e}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl From<SchemeError> for LifecycleError {
    fn from(e: SchemeError) -> Self {
        LifecycleError::Scheme(e)
    }
}

impl From<MaintenanceError> for LifecycleError {
    fn from(e: MaintenanceError) -> Self {
        LifecycleError::Maintenance(e)
    }
}

impl From<FaultError> for LifecycleError {
    fn from(e: FaultError) -> Self {
        LifecycleError::Fault(e)
    }
}

/// Configuration for a [`FormationSupervisor`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    scheme: SchemeConfig,
    probe: ProbeConfig,
    step_ms: f64,
    policy: ReformPolicy,
}

impl SupervisorConfig {
    /// A supervisor for `scheme`, with noise-free default probing, a
    /// ten-second maintenance window, and the balanced policy.
    pub fn new(scheme: SchemeConfig) -> Self {
        SupervisorConfig {
            scheme,
            probe: ProbeConfig::default(),
            step_ms: 10_000.0,
            policy: ReformPolicy::balanced(),
        }
    }

    /// Sets the probe configuration, used both by formation runs and by
    /// per-cache maintenance probing.
    pub fn probe(mut self, probe: ProbeConfig) -> Self {
        self.probe = probe;
        self
    }

    /// Sets the maintenance window width, ms (validated at run time).
    pub fn step_ms(mut self, ms: f64) -> Self {
        self.step_ms = ms;
        self
    }

    /// Sets the re-formation policy.
    pub fn policy(mut self, policy: ReformPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Drives continuous group formation over a fault schedule.
///
/// Construction forces a resilience configuration onto the scheme (the
/// default one when none was set), so every full formation runs the
/// fault-tolerant pipeline and always reports a [`FormationHealth`] —
/// the supervisor's `health_degraded` signal depends on it.
#[derive(Debug, Clone)]
pub struct FormationSupervisor {
    coordinator: GfCoordinator,
    probe: ProbeConfig,
    step_ms: f64,
    policy: ReformPolicy,
}

impl FormationSupervisor {
    /// Builds a supervisor from `config`.
    pub fn new(config: SupervisorConfig) -> Self {
        let resilience = config
            .scheme
            .resilience_config()
            .copied()
            .unwrap_or_default();
        let scheme = config.scheme.probe(config.probe).resilience(resilience);
        FormationSupervisor {
            coordinator: GfCoordinator::new(scheme),
            probe: config.probe,
            step_ms: config.step_ms,
            policy: config.policy,
        }
    }

    /// Supervises `network` over `schedule` for `horizon_ms` of
    /// simulated time and returns the full timeline.
    ///
    /// # Errors
    ///
    /// * [`LifecycleError::BadStep`] / [`LifecycleError::BadHorizon`]
    ///   for non-positive or non-finite durations.
    /// * [`LifecycleError::Fault`] if the schedule references caches
    ///   outside the network or malformed times.
    /// * [`LifecycleError::Scheme`] if a formation run fails (for
    ///   example when faults leave fewer caches than groups).
    /// * [`LifecycleError::Maintenance`] on structural maintenance
    ///   failures (expected churn races are absorbed, never surfaced).
    pub fn run<R: Rng + ?Sized>(
        &self,
        network: &EdgeNetwork,
        schedule: &FaultSchedule,
        horizon_ms: f64,
        rng: &mut R,
    ) -> Result<FormationTimeline, LifecycleError> {
        self.run_observed(network, schedule, horizon_ms, rng, None)
    }

    /// Like [`FormationSupervisor::run`], but records lifecycle
    /// telemetry when an observability bundle is supplied:
    /// `lifecycle.windows` / `lifecycle.epochs` /
    /// `lifecycle.{holds,repairs,partial_reforms,full_reforms}`
    /// counters, a `lifecycle.max_drift` high-water gauge, a
    /// `lifecycle` trace event per decision, a `lifecycle_run` phase
    /// span, plus the underlying `maintenance.*`, `probe.*`, and
    /// `scheme.*` streams. Instrumentation never draws from the RNG,
    /// so with `obs = None` this is exactly
    /// [`FormationSupervisor::run`].
    ///
    /// # Errors
    ///
    /// Exactly as [`FormationSupervisor::run`].
    pub fn run_observed<R: Rng + ?Sized>(
        &self,
        network: &EdgeNetwork,
        schedule: &FaultSchedule,
        horizon_ms: f64,
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Result<FormationTimeline, LifecycleError> {
        if !(self.step_ms.is_finite() && self.step_ms > 0.0) {
            return Err(LifecycleError::BadStep(self.step_ms));
        }
        if !(horizon_ms.is_finite() && horizon_ms > 0.0) {
            return Err(LifecycleError::BadHorizon(horizon_ms));
        }
        let n = network.cache_count();
        schedule.validate(n)?;

        let mut events = schedule.events().to_vec();
        events.sort_by(|a, b| {
            a.time_ms
                .partial_cmp(&b.time_ms)
                .expect("validated times are not NaN")
        });

        // Initial formation at time zero, under whatever is already
        // faulted at that instant.
        let faults = FormationFaults::from_schedule(schedule, 0.0).to_probe_faults();
        let outcome = self.coordinator.form_groups_faulted_observed(
            network,
            &faults,
            rng,
            obs.as_deref_mut(),
        )?;
        let mut last_health = outcome.health().cloned();
        let mut maintainer = GroupMaintainer::new(network, outcome, self.probe);

        let mut down: BTreeSet<usize> = BTreeSet::new();
        let mut gone: BTreeSet<usize> = BTreeSet::new();
        // Groups touched by membership changes since the last
        // re-formation — the targets of the next partial one.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        // Retirements a full re-formation could not honour (they would
        // have emptied a fresh group); reported as pressure next window.
        let mut pending_skips: u64 = 0;

        let mut state = self.policy.state();
        let mut epochs = vec![Epoch {
            start_ms: 0.0,
            groups: serving_map(n, &maintainer),
            landmarks: maintainer.landmarks().to_vec(),
            drift: 1.0,
            health: last_health.clone(),
        }];
        let mut decisions: Vec<DecisionRecord> = Vec::new();

        let windows = (horizon_ms / self.step_ms).ceil() as u64;
        let mut next_event = 0usize;
        for w in 1..=windows {
            let te = (w as f64 * self.step_ms).min(horizon_ms);

            // Apply every membership event that fired in this window.
            let mut signals = WindowSignals {
                skipped_retirements: pending_skips,
                ..WindowSignals::default()
            };
            pending_skips = 0;
            while next_event < events.len() && events[next_event].time_ms < te {
                let event = events[next_event];
                next_event += 1;
                match event.kind {
                    FaultKind::CacheDown { cache } | FaultKind::CacheRetire { cache } => {
                        if matches!(event.kind, FaultKind::CacheRetire { .. }) {
                            down.remove(&cache.index());
                            gone.insert(cache.index());
                        } else {
                            down.insert(cache.index());
                        }
                        match maintainer.retire_observed(cache, obs.as_deref_mut()) {
                            Ok(out) => {
                                signals.retirements += 1;
                                if out.was_landmark {
                                    signals.landmark_retirements += 1;
                                }
                                dirty.insert(out.group);
                            }
                            Err(MaintenanceError::WouldEmptyGroup { group }) => {
                                signals.skipped_retirements += 1;
                                dirty.insert(group);
                            }
                            // Already out (e.g. retirement of a cache
                            // that is currently down).
                            Err(MaintenanceError::UnknownCache(_)) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                    FaultKind::CacheUp { cache } => {
                        down.remove(&cache.index());
                        if gone.contains(&cache.index()) {
                            continue;
                        }
                        match maintainer.readmit_observed(network, cache, rng, obs.as_deref_mut()) {
                            Ok(group) => {
                                signals.readmissions += 1;
                                dirty.insert(group);
                            }
                            // Its retirement was skipped: it never left.
                            Err(MaintenanceError::AlreadyActive(_)) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                    FaultKind::BrownoutStart { .. } | FaultKind::BrownoutEnd => {}
                }
            }

            // Summarize the window and decide.
            signals.drift = maintainer.drift(network)?;
            signals.dead_landmarks = dead_landmarks(&maintainer, &down, &gone).len();
            signals.down_caches = down.len() + gone.len();
            signals.health_degraded = last_health
                .as_ref()
                .is_some_and(FormationHealth::is_degraded);
            let verdict = state.decide(&signals);

            // Execute the verdict.
            let mut decision = verdict.decision;
            let mut escalated = false;
            let mut did_full = false;
            if decision == ReformDecision::Repair {
                repair_pass(&mut maintainer, network, rng, obs.as_deref_mut())?;
            }
            if decision == ReformDecision::PartialReform {
                let degraded: Vec<usize> = if dirty.is_empty() {
                    (0..maintainer.groups().len()).collect()
                } else {
                    dirty
                        .iter()
                        .copied()
                        .filter(|&g| g < maintainer.groups().len())
                        .collect()
                };
                let dead = dead_landmarks(&maintainer, &down, &gone);
                match maintainer.reform_partial_observed(
                    network,
                    &degraded,
                    &dead,
                    rng,
                    obs.as_deref_mut(),
                ) {
                    Ok(_) => {
                        dirty.clear();
                    }
                    // Too few landmarks would survive the prune: the
                    // grouping cannot be repaired locally any more.
                    Err(MaintenanceError::TooFewLandmarks { .. }) => {
                        escalated = true;
                        decision = ReformDecision::FullReform;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if decision == ReformDecision::FullReform {
                did_full = true;
                let faults = FormationFaults::from_schedule(schedule, te).to_probe_faults();
                let outcome = self.coordinator.form_groups_faulted_observed(
                    network,
                    &faults,
                    rng,
                    obs.as_deref_mut(),
                )?;
                last_health = outcome.health().cloned();
                maintainer = GroupMaintainer::new(network, outcome, self.probe);
                dirty.clear();
                // The fresh grouping covers all n caches; re-retire the
                // ones that are still out of service.
                for &c in down.union(&gone) {
                    match maintainer.retire_observed(CacheId(c), obs.as_deref_mut()) {
                        Ok(_) => {}
                        Err(MaintenanceError::WouldEmptyGroup { group }) => {
                            pending_skips += 1;
                            dirty.insert(group);
                        }
                        Err(MaintenanceError::UnknownCache(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }

            // A new epoch starts only when the action actually changed
            // what is served, and only if there is time left to serve
            // it. Under Hold the previous grouping keeps serving — the
            // "never a formation gap" guarantee.
            if decision != ReformDecision::Hold && te < horizon_ms {
                let serving = serving_map(n, &maintainer);
                if serving != epochs[epochs.len() - 1].groups {
                    epochs.push(Epoch {
                        start_ms: te,
                        groups: serving,
                        landmarks: maintainer.landmarks().to_vec(),
                        drift: maintainer.drift(network)?,
                        health: if did_full { last_health.clone() } else { None },
                    });
                }
            }
            let epoch = epochs.len() - 1;
            if let Some(o) = obs.as_deref_mut() {
                o.trace.push(
                    te,
                    "lifecycle",
                    decision.as_str(),
                    vec![
                        ("drift", signals.drift.into()),
                        ("epoch", (epoch as u64).into()),
                    ],
                );
            }
            decisions.push(DecisionRecord {
                window_end_ms: te,
                decision,
                demoted_from: verdict.demoted_from,
                escalated,
                signals,
                epoch,
            });
        }

        let timeline = FormationTimeline::new(self.step_ms, horizon_ms, epochs, decisions);
        if let Some(o) = obs {
            o.metrics.add("lifecycle.windows", windows);
            o.metrics
                .add("lifecycle.epochs", timeline.epochs().len() as u64);
            for (name, which) in [
                ("lifecycle.holds", ReformDecision::Hold),
                ("lifecycle.repairs", ReformDecision::Repair),
                ("lifecycle.partial_reforms", ReformDecision::PartialReform),
                ("lifecycle.full_reforms", ReformDecision::FullReform),
            ] {
                o.metrics.add(name, timeline.decision_count(which) as u64);
            }
            o.metrics
                .max_gauge("lifecycle.max_drift", timeline.max_drift());
            let mut span = o.phases.span("lifecycle_run");
            span.add_work(windows as f64);
        }
        Ok(timeline)
    }
}

/// Formation-time landmark node ids whose cache is currently out of
/// service (node 0 is the origin and can never die; node `l >= 1` is
/// cache `l - 1`).
fn dead_landmarks(
    maintainer: &GroupMaintainer,
    down: &BTreeSet<usize>,
    gone: &BTreeSet<usize>,
) -> Vec<usize> {
    maintainer
        .landmarks()
        .iter()
        .copied()
        .filter(|&l| l >= 1 && (down.contains(&(l - 1)) || gone.contains(&(l - 1))))
        .collect()
}

/// Re-seats every active cache against the current group centers: the
/// cheap repair that moves strays without touching the clustering.
/// Singleton groups are left alone (retiring their member would empty
/// the group).
fn repair_pass<R: Rng + ?Sized>(
    maintainer: &mut GroupMaintainer,
    network: &EdgeNetwork,
    rng: &mut R,
    mut obs: Option<&mut Obs>,
) -> Result<(), LifecycleError> {
    for i in 0..maintainer.cache_count() {
        let cache = CacheId(i);
        let Some(group) = maintainer.group_of(cache) else {
            continue;
        };
        if maintainer.groups()[group].len() < 2 {
            continue;
        }
        maintainer.retire_observed(cache, obs.as_deref_mut())?;
        maintainer.readmit_observed(network, cache, rng, obs.as_deref_mut())?;
    }
    Ok(())
}

/// The serving partition: the maintainer's non-empty groups, plus a
/// singleton group for every out-of-service cache so the map always
/// covers the full id space (the replay engine requires a partition;
/// the fault schedule keeps traffic away from down caches).
fn serving_map(cache_count: usize, maintainer: &GroupMaintainer) -> GroupMap {
    let mut groups: Vec<Vec<CacheId>> = maintainer
        .groups()
        .iter()
        .filter(|g| !g.is_empty())
        .cloned()
        .collect();
    for i in 0..cache_count {
        if maintainer.group_of(CacheId(i)).is_none() {
            groups.push(vec![CacheId(i)]);
        }
    }
    GroupMap::new(cache_count, groups).expect("maintainer invariants give a disjoint cover")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_faults::FaultPlan;
    use ecg_topology::fixtures::paper_figure1;
    use rand::{rngs::StdRng, SeedableRng};

    fn network() -> EdgeNetwork {
        EdgeNetwork::from_rtt_matrix(paper_figure1())
    }

    fn supervisor(policy: ReformPolicy) -> FormationSupervisor {
        FormationSupervisor::new(
            SupervisorConfig::new(SchemeConfig::sl(3).landmarks(3).plset_multiplier(2))
                .probe(ProbeConfig::noiseless())
                .policy(policy),
        )
    }

    #[test]
    fn zero_churn_holds_a_single_epoch() {
        let network = network();
        let schedule = FaultSchedule::new();
        let mut rng = StdRng::seed_from_u64(7);
        let timeline = supervisor(ReformPolicy::balanced())
            .run(&network, &schedule, 60_000.0, &mut rng)
            .expect("quiet run succeeds");
        assert_eq!(timeline.epochs().len(), 1);
        assert_eq!(timeline.decisions().len(), 6);
        assert_eq!(timeline.decision_count(ReformDecision::Hold), 6);
        assert_eq!(timeline.reformations(), 0);
        assert_eq!(timeline.max_drift(), 1.0);
        assert!(
            timeline.epochs()[0].health.is_some(),
            "resilience is forced"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let network = network();
        let schedule = FaultPlan::new()
            .crash(CacheId(1), 12_000.0, 25_000.0)
            .retire(CacheId(4), 31_000.0)
            .schedule();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            supervisor(ReformPolicy::eager())
                .run(&network, &schedule, 80_000.0, &mut rng)
                .expect("run succeeds")
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_ne!(a, run(4), "the RNG seed matters");
    }

    #[test]
    fn churn_triggers_reformation_and_new_epochs() {
        let network = network();
        let schedule = FaultPlan::new()
            .crash(CacheId(0), 11_000.0, 60_000.0)
            .retire(CacheId(3), 21_000.0)
            .schedule();
        let mut rng = StdRng::seed_from_u64(11);
        let timeline = supervisor(ReformPolicy::eager())
            .run(&network, &schedule, 80_000.0, &mut rng)
            .expect("churny run succeeds");
        assert!(timeline.reformations() > 0, "landmark loss must re-form");
        assert!(timeline.epochs().len() > 1, "re-formation opens an epoch");
        // Epoch starts strictly increase and stay inside the horizon.
        let starts: Vec<f64> = timeline.epoch_spans().map(|(s, _)| s).collect();
        assert!(starts.windows(2).all(|p| p[0] < p[1]));
        assert!(starts.iter().all(|&s| s < 80_000.0));
        // Decisions reference real epochs.
        for d in timeline.decisions() {
            assert!(d.epoch < timeline.epochs().len());
        }
    }

    #[test]
    fn static_policy_never_changes_the_grouping() {
        let network = network();
        let schedule = FaultPlan::new()
            .crash(CacheId(0), 11_000.0, 60_000.0)
            .retire(CacheId(3), 21_000.0)
            .retire(CacheId(5), 33_000.0)
            .schedule();
        let mut rng = StdRng::seed_from_u64(11);
        let timeline = supervisor(ReformPolicy::hold_only())
            .run(&network, &schedule, 80_000.0, &mut rng)
            .expect("static run succeeds");
        assert_eq!(timeline.epochs().len(), 1, "static policy never re-forms");
        assert_eq!(timeline.reformations(), 0);
        assert_eq!(
            timeline.decision_count(ReformDecision::Hold),
            timeline.decisions().len()
        );
    }

    #[test]
    fn losing_every_cache_landmark_escalates_to_full_reform() {
        let network = network();
        // Form first to learn which caches are landmarks, then retire
        // all of them (node 0 is the origin and cannot be retired).
        let sup = supervisor(ReformPolicy::eager());
        let mut rng = StdRng::seed_from_u64(5);
        let quiet = sup
            .run(&network, &FaultSchedule::new(), 10_000.0, &mut rng)
            .expect("probe run succeeds");
        let victims: Vec<CacheId> = quiet.epochs()[0]
            .landmarks
            .iter()
            .filter(|&&l| l >= 1)
            .map(|&l| CacheId(l - 1))
            .collect();
        assert!(!victims.is_empty());

        let mut plan = FaultPlan::new();
        for (i, &v) in victims.iter().enumerate() {
            plan = plan.retire(v, 11_000.0 + i as f64);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let timeline = sup
            .run(&network, &plan.schedule(), 40_000.0, &mut rng)
            .expect("escalating run succeeds");
        assert!(
            timeline.decisions().iter().any(|d| d.escalated),
            "partial re-form must escalate when no cache landmark survives"
        );
        assert!(timeline.decision_count(ReformDecision::FullReform) > 0);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let network = network();
        let schedule = FaultSchedule::new();
        let mut rng = StdRng::seed_from_u64(1);
        let sup = supervisor(ReformPolicy::balanced());
        assert!(matches!(
            sup.run(&network, &schedule, 0.0, &mut rng),
            Err(LifecycleError::BadHorizon(_))
        ));
        let sup_bad = FormationSupervisor::new(
            SupervisorConfig::new(SchemeConfig::sl(3).landmarks(3)).step_ms(0.0),
        );
        assert!(matches!(
            sup_bad.run(&network, &schedule, 10_000.0, &mut rng),
            Err(LifecycleError::BadStep(_))
        ));
        let mut out_of_range = FaultSchedule::new();
        out_of_range.push(1_000.0, FaultKind::CacheDown { cache: CacheId(99) });
        assert!(matches!(
            sup.run(&network, &out_of_range, 10_000.0, &mut rng),
            Err(LifecycleError::Fault(_))
        ));
    }

    #[test]
    fn observed_run_matches_plain_and_records_counters() {
        let network = network();
        let schedule = FaultPlan::new()
            .crash(CacheId(1), 12_000.0, 25_000.0)
            .schedule();
        let sup = supervisor(ReformPolicy::eager());
        let mut rng = StdRng::seed_from_u64(9);
        let plain = sup
            .run(&network, &schedule, 60_000.0, &mut rng)
            .expect("plain run succeeds");
        let mut obs = Obs::new();
        let mut rng = StdRng::seed_from_u64(9);
        let observed = sup
            .run_observed(&network, &schedule, 60_000.0, &mut rng, Some(&mut obs))
            .expect("observed run succeeds");
        assert_eq!(plain, observed, "observation must not perturb the run");
        assert_eq!(obs.metrics.counter("lifecycle.windows"), 6);
        assert_eq!(
            obs.metrics.counter("lifecycle.epochs"),
            observed.epochs().len() as u64
        );
        let total = obs.metrics.counter("lifecycle.holds")
            + obs.metrics.counter("lifecycle.repairs")
            + obs.metrics.counter("lifecycle.partial_reforms")
            + obs.metrics.counter("lifecycle.full_reforms");
        assert_eq!(total, 6, "every window decides exactly once");
        assert!(obs.metrics.gauge("lifecycle.max_drift").is_some());
    }
}
