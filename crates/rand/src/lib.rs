//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! pieces of `rand` the codebase actually uses are reimplemented here and
//! wired in through a path dependency: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`].
//!
//! The value streams are **not** identical to upstream `rand` (`StdRng`
//! here is xoshiro256++ seeded via SplitMix64, not ChaCha12). Everything
//! in this repository treats seeded streams as an opaque deterministic
//! source, so only determinism and statistical quality matter, and both
//! hold: xoshiro256++ passes BigCrush and the integer ranges use
//! rejection sampling, so they are unbiased.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The only engine primitive.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type samplable uniformly over its "natural" range by [`Rng::gen`]
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A scalar type usable with [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased draw from `[0, span)` via rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; values at or above it
    // would bias the modulo, so redraw.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = low + (high - low) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v < high { v } else { <$t>::max(low, high - (high - low) * <$t>::EPSILON) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value over the type's natural range (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_int_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values hit");
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..=3);
            assert!(v <= 3);
        }
        // Negative and single-value ranges.
        assert_eq!(rng.gen_range(5i64..=5), 5);
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v), "v {v}");
        }
        let v = rng.gen_range(2.5..=2.5);
        assert_eq!(v, 2.5);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn works_through_unsized_rng_references() {
        fn sum_three<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            (0..3).map(|_| rng.gen::<f64>()).sum()
        }
        let mut rng = StdRng::seed_from_u64(8);
        let dynamic: &mut dyn RngCore = &mut rng;
        assert!(sum_three(dynamic) < 3.0);
    }
}
