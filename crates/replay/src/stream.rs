//! Streamed shard construction: derived-seed request regeneration.
//!
//! The streamed path never materializes the global trace. A shard
//! rebuilds exactly its members' arrivals from the workload's master
//! seed ([`ecg_workload::RequestConfig::stream_cache`] is a pure
//! function of `(master, cache)`), k-way-merges the member streams with
//! the shared update log, and reads its sub-topology straight from the
//! [`RttSource`] oracle. Peak memory is therefore bounded by the events
//! of the shards in flight, not by `N × requests`.
//!
//! ## Ordering contract
//!
//! The eager equivalent ([`StreamedWorkload::materialize_trace`])
//! concatenates per-cache streams in cache order, stable-sorts by time,
//! and merges updates before requests at equal instants. The k-way
//! merge reproduces that exactly: requests order by `(time, global
//! cache id)` — each per-cache stream is already time-ordered, so
//! ascending-cache tie-breaking equals the stable sort — and an update
//! at time `t` precedes any request at `t`.

use ecg_sim::{FaultSchedule, GroupMap, SimError};
use ecg_topology::{CacheId, EdgeNetwork, RttMatrix, RttSource};
use ecg_workload::{
    merge_streams, DocumentCatalog, Request, RequestConfig, TraceEvent, Update, ZipfSampler,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A replay workload defined by generation parameters instead of a
/// materialized trace: per-cache Poisson request streams regenerated
/// from `master` on demand, plus a shared (small) origin update log.
///
/// # Examples
///
/// ```
/// use ecg_replay::StreamedWorkload;
/// use ecg_workload::RequestConfig;
///
/// let workload =
///     StreamedWorkload::new(RequestConfig::default(), 42, 60_000.0);
/// assert_eq!(workload.master(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedWorkload<'a> {
    requests: RequestConfig,
    master: u64,
    duration_ms: f64,
    updates: &'a [Update],
}

impl<'a> StreamedWorkload<'a> {
    /// A workload of `duration_ms` per-cache request streams derived
    /// from `master`, with no origin updates.
    ///
    /// # Panics
    ///
    /// Panics if `duration_ms` is negative or not finite.
    pub fn new(requests: RequestConfig, master: u64, duration_ms: f64) -> Self {
        assert!(
            duration_ms.is_finite() && duration_ms >= 0.0,
            "duration must be finite and non-negative"
        );
        StreamedWorkload {
            requests,
            master,
            duration_ms,
            updates: &[],
        }
    }

    /// Attaches the origin update log (time-sorted, as produced by
    /// [`ecg_workload::generate_updates`]). The log is shared by every
    /// shard — this is the update-boundary synchronization that keeps
    /// shard origins in lockstep.
    pub fn updates(mut self, updates: &'a [Update]) -> Self {
        self.updates = updates;
        self
    }

    /// The per-cache request generation parameters.
    pub fn request_config(&self) -> &RequestConfig {
        &self.requests
    }

    /// The master seed every per-cache stream derives from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The workload horizon in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.duration_ms
    }

    /// The shared origin update log.
    pub fn update_log(&self) -> &'a [Update] {
        self.updates
    }

    /// The Zipf exponent shards build their shared sampler with.
    pub(crate) fn zipf_exponent(&self) -> f64 {
        self.requests.zipf_exponent_value()
    }

    /// Materializes the monolithic trace this workload describes —
    /// [`ecg_workload::RequestConfig::generate_with_master`] merged with
    /// the update log. [`crate::replay_streamed`] over `caches` caches
    /// is bit-identical to the monolithic simulator over this trace;
    /// only tests, verification harnesses, and small-N tooling should
    /// call it (it allocates the whole trace the streamed path exists to
    /// avoid).
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or `caches == 0`.
    pub fn materialize_trace(&self, catalog: &DocumentCatalog, caches: usize) -> Vec<TraceEvent> {
        let requests =
            self.requests
                .generate_with_master(catalog, caches, self.duration_ms, self.master);
        merge_streams(&requests, self.updates)
    }
}

/// Mirrors the monolithic validation for a streamed input: group map
/// against the oracle's cache count, fault schedule, update-log
/// document references (requests are in range by construction).
pub(crate) fn validate(
    cache_count: usize,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    workload: &StreamedWorkload<'_>,
    schedule: &FaultSchedule,
) -> Result<(), SimError> {
    if groups.cache_count() != cache_count {
        return Err(SimError::CacheCountMismatch {
            network: cache_count,
            groups: groups.cache_count(),
        });
    }
    schedule.validate(cache_count)?;
    for u in workload.update_log() {
        if u.doc.index() >= catalog.len() {
            return Err(SimError::DocOutOfRange { doc: u.doc.index() });
        }
    }
    Ok(())
}

/// The shard's edge network read directly from the oracle: node 0 is
/// the origin, node `i + 1` is cache `i`, exactly the values a full
/// materialization plus [`RttMatrix::submatrix`] would produce.
pub(crate) fn member_network(rtt: &dyn RttSource, members: &[CacheId]) -> EdgeNetwork {
    let mut nodes = Vec::with_capacity(members.len() + 1);
    nodes.push(0usize);
    nodes.extend(members.iter().map(|m| m.index() + 1));
    EdgeNetwork::from_rtt_matrix(RttMatrix::from_fn(nodes.len(), |a, b| {
        rtt.rtt_ms(nodes[a], nodes[b])
    }))
}

/// A member stream's next pending arrival, ordered for the min-heap by
/// `(time, global cache id)`. Times are finite by construction (the
/// generators reject non-finite inputs), so the total order is safe.
struct Head {
    time_ms: f64,
    global_cache: usize,
    slot: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest
        // (time, cache) pair first.
        other
            .time_ms
            .partial_cmp(&self.time_ms)
            .expect("stream times are finite")
            .then(other.global_cache.cmp(&self.global_cache))
    }
}

/// Builds group `g`'s sub-trace by regenerating its members' streams
/// and k-way-merging them with the shared update log. Requests are
/// localized (local id = position in the member list); updates precede
/// requests at equal instants, as in [`merge_streams`].
pub(crate) fn member_subtrace(
    workload: &StreamedWorkload<'_>,
    zipf: &ZipfSampler,
    members: &[CacheId],
) -> Vec<TraceEvent> {
    let cfg = workload.request_config();
    let mut streams: Vec<_> = members
        .iter()
        .map(|m| cfg.stream_cache(zipf, m.index(), workload.master(), workload.duration_ms()))
        .collect();
    let mut pending: Vec<Option<Request>> = Vec::with_capacity(members.len());
    let mut heap = BinaryHeap::with_capacity(members.len());
    for (slot, stream) in streams.iter_mut().enumerate() {
        let head = stream.next();
        if let Some(r) = &head {
            heap.push(Head {
                time_ms: r.time_ms,
                global_cache: members[slot].index(),
                slot,
            });
        }
        pending.push(head);
    }

    let updates = workload.update_log();
    let mut out = Vec::new();
    let mut ui = 0usize;
    while let Some(next) = heap.pop() {
        // Updates at or before this arrival fire first (ties go to the
        // update, matching `merge_streams`).
        while ui < updates.len() && updates[ui].time_ms <= next.time_ms {
            out.push(TraceEvent::Update(updates[ui]));
            ui += 1;
        }
        let r = pending[next.slot]
            .take()
            .expect("heap entries track pending arrivals");
        out.push(TraceEvent::Request(Request {
            cache: next.slot,
            ..r
        }));
        let head = streams[next.slot].next();
        if let Some(nr) = &head {
            heap.push(Head {
                time_ms: nr.time_ms,
                global_cache: members[next.slot].index(),
                slot: next.slot,
            });
        }
        pending[next.slot] = head;
    }
    while ui < updates.len() {
        out.push(TraceEvent::Update(updates[ui]));
        ui += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_topology::SyntheticRttConfig;
    use ecg_workload::{CatalogConfig, DocId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog(n: usize) -> DocumentCatalog {
        CatalogConfig::default()
            .documents(n)
            .generate(&mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn member_subtrace_is_the_materialized_subsequence() {
        let cat = catalog(150);
        let cfg = RequestConfig::default().rate_per_sec_per_cache(5.0);
        let updates = vec![
            Update {
                time_ms: 1_000.0,
                doc: DocId(4),
            },
            Update {
                time_ms: 7_500.0,
                doc: DocId(9),
            },
        ];
        let workload = StreamedWorkload::new(cfg, 99, 12_000.0).updates(&updates);
        let full = workload.materialize_trace(&cat, 8);
        let zipf = ZipfSampler::new(cat.len(), cfg.zipf_exponent_value());
        let members = [CacheId(6), CacheId(1), CacheId(3)];
        let sub = member_subtrace(&workload, &zipf, &members);

        // Expected: the full trace restricted to member requests
        // (localized) plus all updates, in order.
        let mut expected = Vec::new();
        for event in &full {
            match event {
                TraceEvent::Request(r) => {
                    if let Some(local) = members.iter().position(|m| m.index() == r.cache) {
                        expected.push(TraceEvent::Request(Request { cache: local, ..*r }));
                    }
                }
                TraceEvent::Update(u) => expected.push(TraceEvent::Update(*u)),
            }
        }
        assert_eq!(sub, expected);
        assert!(!sub.is_empty());
    }

    #[test]
    fn member_network_matches_materialized_submatrix() {
        let rtt = SyntheticRttConfig::default().generate(9, 5);
        let full = RttMatrix::from_fn(9, |a, b| rtt.rtt_ms(a, b));
        let members = [CacheId(5), CacheId(0), CacheId(7)];
        let via_oracle = member_network(&rtt, &members);
        let via_matrix = EdgeNetwork::from_rtt_matrix(full.submatrix(&[0, 6, 1, 8]));
        assert_eq!(via_oracle, via_matrix);
    }

    #[test]
    fn trailing_updates_survive_the_merge() {
        let cat = catalog(20);
        let cfg = RequestConfig::default().rate_per_sec_per_cache(1.0);
        let updates = vec![Update {
            time_ms: 900_000.0,
            doc: DocId(1),
        }];
        let workload = StreamedWorkload::new(cfg, 7, 1_000.0).updates(&updates);
        let zipf = ZipfSampler::new(cat.len(), cfg.zipf_exponent_value());
        let sub = member_subtrace(&workload, &zipf, &[CacheId(0)]);
        assert_eq!(
            sub.last(),
            Some(&TraceEvent::Update(updates[0])),
            "update after the last request must still be delivered"
        );
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn negative_duration_panics() {
        let _ = StreamedWorkload::new(RequestConfig::default(), 1, -1.0);
    }
}
