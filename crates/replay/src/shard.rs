//! Shard planning for materialized traces.
//!
//! A shard is the restriction of the global replay to one group: its
//! members' requests (re-indexed to local ids), **all** origin updates,
//! its members' fault events plus all brownout windows, and the RTT
//! sub-matrix over `[origin, members…]`. Everything here is
//! order-preserving — each shard's event sequence is a subsequence of
//! the global one, which together with the event queue's FIFO tie-break
//! is what makes the merged report bit-identical.

use ecg_sim::fault::FaultKind;
use ecg_sim::{FaultSchedule, GroupMap, SimError};
use ecg_topology::{CacheId, EdgeNetwork};
use ecg_workload::{DocumentCatalog, Request, TraceEvent, Update};

/// Mirrors the monolithic simulator's input validation so replay fails
/// with the same [`SimError`] before any shard is spawned (shards then
/// run on known-good inputs).
pub(crate) fn validate(
    cache_count: usize,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    schedule: &FaultSchedule,
) -> Result<(), SimError> {
    if groups.cache_count() != cache_count {
        return Err(SimError::CacheCountMismatch {
            network: cache_count,
            groups: groups.cache_count(),
        });
    }
    schedule.validate(cache_count)?;
    for event in trace {
        match event {
            TraceEvent::Request(r) => {
                if r.cache >= cache_count {
                    return Err(SimError::RequestCacheOutOfRange { cache: r.cache });
                }
                if r.doc.index() >= catalog.len() {
                    return Err(SimError::DocOutOfRange { doc: r.doc.index() });
                }
            }
            TraceEvent::Update(u) => {
                if u.doc.index() >= catalog.len() {
                    return Err(SimError::DocOutOfRange { doc: u.doc.index() });
                }
            }
        }
    }
    Ok(())
}

/// The global trace split once, up front: per-group request runs plus
/// the shared update log, each entry tagged with its original trace
/// position so a shard's sub-trace can be rebuilt as an exact
/// subsequence by a two-pointer position merge.
///
/// Requests are localized (global cache id → index within the member
/// list) at split time; updates are shared untouched across all shards.
pub(crate) struct RequestPartition {
    per_group: Vec<Vec<(usize, Request)>>,
    updates: Vec<(usize, Update)>,
}

impl RequestPartition {
    /// One pass over the trace: `O(len(trace))` plus one localized
    /// request copy per event.
    pub(crate) fn build(groups: &GroupMap, trace: &[TraceEvent]) -> Self {
        // global cache id -> position within its group's member list.
        let mut local_of = vec![0usize; groups.cache_count()];
        for members in groups.groups() {
            for (local, &m) in members.iter().enumerate() {
                local_of[m.index()] = local;
            }
        }
        let mut per_group: Vec<Vec<(usize, Request)>> =
            (0..groups.group_count()).map(|_| Vec::new()).collect();
        let mut updates = Vec::new();
        for (pos, event) in trace.iter().enumerate() {
            match event {
                TraceEvent::Request(r) => {
                    let localized = Request {
                        cache: local_of[r.cache],
                        ..*r
                    };
                    per_group[groups.group_of(CacheId(r.cache))].push((pos, localized));
                }
                TraceEvent::Update(u) => updates.push((pos, *u)),
            }
        }
        RequestPartition { per_group, updates }
    }

    /// Group `g`'s sub-trace: its localized requests merged with the
    /// shared update log by original trace position. Positions are
    /// disjoint, so the merge reproduces the exact relative order the
    /// monolithic event queue saw.
    pub(crate) fn subtrace(&self, g: usize) -> Vec<TraceEvent> {
        let reqs = &self.per_group[g];
        let ups = &self.updates;
        let mut out = Vec::with_capacity(reqs.len() + ups.len());
        let (mut ri, mut ui) = (0usize, 0usize);
        while ri < reqs.len() || ui < ups.len() {
            let take_update = match (reqs.get(ri), ups.get(ui)) {
                (Some(&(rp, _)), Some(&(up, _))) => up < rp,
                (None, Some(_)) => true,
                _ => false,
            };
            if take_update {
                out.push(TraceEvent::Update(ups[ui].1));
                ui += 1;
            } else {
                out.push(TraceEvent::Request(reqs[ri].1));
                ri += 1;
            }
        }
        out
    }
}

/// The shard's edge network: the RTT sub-matrix over
/// `[origin, members…]`, in member-list order so local cache `i` is
/// `members[i]` and equal-RTT peer ties resolve as in the full network.
pub(crate) fn member_network(network: &EdgeNetwork, members: &[CacheId]) -> EdgeNetwork {
    let mut indices = Vec::with_capacity(members.len() + 1);
    indices.push(0); // origin row/column of the [origin, caches…] matrix
    indices.extend(members.iter().map(|m| m.index() + 1));
    EdgeNetwork::from_rtt_matrix(network.rtt_matrix().submatrix(&indices))
}

/// The shard's fault script: group `g`'s member events re-indexed to
/// local ids, plus every brownout window (the origin is shared), in the
/// original push order. Failover penalty and timeline bucket carry over
/// so degradation metrics bucket identically.
pub(crate) fn member_schedule(
    schedule: &FaultSchedule,
    groups: &GroupMap,
    g: usize,
) -> FaultSchedule {
    let mut local_of = vec![usize::MAX; groups.cache_count()];
    for (local, &m) in groups.groups()[g].iter().enumerate() {
        local_of[m.index()] = local;
    }
    let mut sub = FaultSchedule::new()
        .failover_penalty_ms(schedule.failover_penalty())
        .timeline_bucket_ms(schedule.timeline_bucket());
    for event in schedule.events() {
        match event.kind {
            FaultKind::CacheDown { cache }
            | FaultKind::CacheUp { cache }
            | FaultKind::CacheRetire { cache } => {
                let local = local_of[cache.index()];
                if local == usize::MAX {
                    continue;
                }
                let kind = match event.kind {
                    FaultKind::CacheDown { .. } => FaultKind::CacheDown {
                        cache: CacheId(local),
                    },
                    FaultKind::CacheUp { .. } => FaultKind::CacheUp {
                        cache: CacheId(local),
                    },
                    _ => FaultKind::CacheRetire {
                        cache: CacheId(local),
                    },
                };
                sub.push(event.time_ms, kind);
            }
            FaultKind::BrownoutStart { .. } | FaultKind::BrownoutEnd => {
                sub.push(event.time_ms, event.kind);
            }
        }
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_topology::fixtures::paper_figure1;
    use ecg_workload::DocId;

    fn groups() -> GroupMap {
        GroupMap::new(
            4,
            vec![vec![CacheId(2), CacheId(0)], vec![CacheId(1), CacheId(3)]],
        )
        .expect("valid partition")
    }

    fn req(time_ms: f64, cache: usize, doc: usize) -> TraceEvent {
        TraceEvent::Request(Request {
            time_ms,
            cache,
            doc: DocId(doc),
        })
    }

    fn upd(time_ms: f64, doc: usize) -> TraceEvent {
        TraceEvent::Update(Update {
            time_ms,
            doc: DocId(doc),
        })
    }

    #[test]
    fn partition_localizes_and_preserves_order() {
        let trace = vec![
            req(1.0, 1, 0),
            upd(2.0, 5),
            req(2.0, 2, 1), // group 0, local id 0 (member order [2, 0])
            req(3.0, 0, 2), // group 0, local id 1
            upd(4.0, 6),
            req(5.0, 3, 3), // group 1, local id 1
        ];
        let plan = RequestPartition::build(&groups(), &trace);
        assert_eq!(
            plan.subtrace(0),
            vec![upd(2.0, 5), req(2.0, 0, 1), req(3.0, 1, 2), upd(4.0, 6)]
        );
        assert_eq!(
            plan.subtrace(1),
            vec![req(1.0, 0, 0), upd(2.0, 5), upd(4.0, 6), req(5.0, 1, 3)]
        );
    }

    #[test]
    fn member_network_reads_origin_and_member_rows() {
        let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let members = [CacheId(2), CacheId(0)];
        let sub = member_network(&network, &members);
        assert_eq!(sub.cache_count(), 2);
        assert_eq!(
            sub.cache_to_origin(CacheId(0)),
            network.cache_to_origin(CacheId(2))
        );
        assert_eq!(
            sub.cache_to_origin(CacheId(1)),
            network.cache_to_origin(CacheId(0))
        );
        assert_eq!(
            sub.cache_to_cache(CacheId(0), CacheId(1)),
            network.cache_to_cache(CacheId(2), CacheId(0))
        );
    }

    #[test]
    fn member_schedule_keeps_members_and_brownouts() {
        let mut schedule = FaultSchedule::new()
            .failover_penalty_ms(7.0)
            .timeline_bucket_ms(2_000.0);
        schedule.push(1.0, FaultKind::CacheDown { cache: CacheId(0) });
        schedule.push(2.0, FaultKind::CacheDown { cache: CacheId(1) });
        schedule.push(3.0, FaultKind::BrownoutStart { factor: 2.0 });
        schedule.push(4.0, FaultKind::CacheUp { cache: CacheId(0) });
        schedule.push(5.0, FaultKind::BrownoutEnd);
        schedule.push(6.0, FaultKind::CacheRetire { cache: CacheId(3) });
        let sub = member_schedule(&schedule, &groups(), 0);
        assert_eq!(sub.failover_penalty(), 7.0);
        assert_eq!(sub.timeline_bucket(), 2_000.0);
        // Member order is [2, 0], so global cache 0 is local 1; the
        // group-1 events (caches 1 and 3) are gone, brownouts stay.
        let kinds: Vec<FaultKind> = sub.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::CacheDown { cache: CacheId(1) },
                FaultKind::BrownoutStart { factor: 2.0 },
                FaultKind::CacheUp { cache: CacheId(1) },
                FaultKind::BrownoutEnd,
            ]
        );
    }
}
