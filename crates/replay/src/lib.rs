//! Sharded, streaming trace replay at production scale.
//!
//! The monolithic [`ecg_sim::simulate`] driver materializes one global
//! trace and walks it serially — fine at paper scale (tens of caches,
//! tens of thousands of requests), impossible at the roadmap's
//! north-star scale of 50 000 caches × millions of requests. This crate
//! exploits the structural fact the paper's evaluation rests on: *groups
//! are independent between re-formation events*. A request at cache `c`
//! only ever touches `c`'s group peers and the origin, so the request
//! stream partitions perfectly per group and each partition can be
//! replayed as its own small simulation — a **shard** — on the
//! [`ecg_par`] persistent worker pool.
//!
//! Two ingredients make this production-scale rather than a port:
//!
//! 1. **Streaming generation.** [`replay_streamed`] never materializes
//!    the global trace: each shard regenerates exactly its own members'
//!    arrivals from a master seed via
//!    [`ecg_workload::RequestConfig::stream_cache`] (derived-seed
//!    per-cache streams), so peak memory is bounded by the largest
//!    group's event count times the worker count, not by `N × requests`.
//! 2. **Update-boundary synchronization.** Origin interactions (the
//!    freshness protocols: on-access invalidation, multicast push, TTL
//!    leases) are modeled per shard by replaying the *full* update log
//!    into every shard, so each shard's origin reaches the same document
//!    version at the same simulated instant as the monolithic origin.
//!    Cross-group behavior therefore matches without any cross-shard
//!    communication: shard origins agree at every update boundary by
//!    construction.
//!
//! ## The merge contract
//!
//! Equivalence is load-bearing, not best-effort: on any input the
//! monolithic `simulate` can handle, the sharded replay produces a
//! **bit-identical** merged [`SimReport`], at any `ECG_THREADS` setting.
//! This holds because
//!
//! * every integer metric is a sum of per-event increments, and u64
//!   addition is associative;
//! * every f64 accumulator in [`ecg_sim::MetricsRecorder`] sums in
//!   *per-cache* or *per-group* event order (the simulator folds its
//!   per-group degradation recorders in group order for exactly this
//!   reason), and shards are merged in group order, so each f64 sum
//!   replays the identical chain of additions;
//! * per-shard fault schedules keep each member's crash/recover/retire
//!   subsequence (plus all brownout windows) in the original relative
//!   order, and the event queue's FIFO tie-break is order-preserving on
//!   subsequences.
//!
//! `origin_updates` is taken from shard 0 rather than summed: every
//! shard applies the full update log, so all shards agree on it.
//!
//! # Examples
//!
//! ```
//! use ecg_replay::{replay_sharded, ReplayConfig};
//! use ecg_sim::{simulate, GroupMap};
//! use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
//! use ecg_workload::{merge_streams, CatalogConfig, RequestConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
//! let mut rng = StdRng::seed_from_u64(1);
//! let catalog = CatalogConfig::default().documents(100).generate(&mut rng);
//! let requests = RequestConfig::default().generate(&catalog, 6, 10_000.0, &mut rng);
//! let trace = merge_streams(&requests, &[]);
//! let groups = GroupMap::new(6, vec![
//!     (0..3).map(ecg_topology::CacheId).collect(),
//!     (3..6).map(ecg_topology::CacheId).collect(),
//! ])?;
//!
//! let config = ReplayConfig::new();
//! let sharded = replay_sharded(&network, &groups, &catalog, &trace, &config)?;
//! let monolithic =
//!     simulate(&network, &groups, &catalog, &trace, *config.sim_config())?;
//! assert_eq!(sharded, monolithic);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must attach context to failures (`expect`/`Result`), not
// panic opaquely; tests may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod epoch;
mod shard;
mod stream;

pub use epoch::{
    replay_epochs, replay_epochs_observed, EpochReplayError, EpochReplayReport, ReplayEpoch,
};
pub use stream::StreamedWorkload;

use ecg_cache::CacheStats;
use ecg_obs::Obs;
use ecg_sim::{
    DegradationMetrics, FaultSchedule, GroupMap, MetricsRecorder, SimConfig, SimError, SimReport,
};
use ecg_topology::{EdgeNetwork, RttSource};
use ecg_workload::{DocumentCatalog, TraceEvent, ZipfSampler};
use std::time::Instant;

/// Configuration of a sharded replay: the per-shard simulator settings
/// plus the fault script injected alongside the workload.
///
/// The default is the default [`SimConfig`] with no faults — byte-for-
/// byte the monolithic simulator's defaults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayConfig {
    sim: SimConfig,
    schedule: FaultSchedule,
}

impl ReplayConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the simulator configuration every shard runs with.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the fault schedule (cache ids are global; each shard
    /// receives its members' events plus all brownout windows).
    pub fn schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The per-shard simulator configuration.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// The global fault schedule.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

/// Wall-clock stage timings of one replay run.
///
/// These are *measurements*, not simulation outputs: they vary run to
/// run and never feed back into the report or the observability bundle
/// (whose `work` values stay deterministic). `bench_replay` records them
/// per sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayTimings {
    /// Input validation and shard planning, ms.
    pub plan_ms: f64,
    /// Shard construction + simulation on the worker pool, ms.
    pub shards_ms: f64,
    /// Group-order report merging, ms.
    pub merge_ms: f64,
}

impl ReplayTimings {
    /// Total measured time across all stages, ms.
    pub fn total_ms(&self) -> f64 {
        self.plan_ms + self.shards_ms + self.merge_ms
    }
}

/// A merged replay result plus its run telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The merged simulation report — bit-identical to the monolithic
    /// [`ecg_sim::simulate`] on the same input.
    pub report: SimReport,
    /// Wall-clock stage timings (non-deterministic; for benchmarks).
    pub timings: ReplayTimings,
    /// Number of shards (= groups) replayed.
    pub shards: usize,
    /// Total events (requests + shared updates) fed across all shards.
    pub shard_events: u64,
}

/// Replays a materialized trace sharded per group and merges the
/// per-shard reports in group order.
///
/// Produces a report bit-identical to
/// [`ecg_sim::simulate_with_faults`]`(network, groups, catalog, trace,
/// *config.sim_config(), config.fault_schedule())`, at any
/// `ECG_THREADS` setting.
///
/// # Errors
///
/// Exactly the [`SimError`] cases the monolithic simulator reports:
/// group/network mismatch, out-of-range trace references, invalid fault
/// schedule.
pub fn replay_sharded(
    network: &EdgeNetwork,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: &ReplayConfig,
) -> Result<SimReport, SimError> {
    replay_sharded_observed(network, groups, catalog, trace, config, None).map(|r| r.report)
}

/// Like [`replay_sharded`], returning stage timings and recording
/// `replay.*` counters and a `replay` phase span into `obs` when one is
/// supplied.
///
/// The observability bundle gets deterministic values only (shard and
/// event counts as span work, never wall-clock), so metrics JSON stays
/// byte-stable across hosts and thread counts; wall-clock lives in the
/// returned [`ReplayTimings`].
///
/// # Errors
///
/// Exactly as [`replay_sharded`].
pub fn replay_sharded_observed(
    network: &EdgeNetwork,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: &ReplayConfig,
    obs: Option<&mut Obs>,
) -> Result<ReplayReport, SimError> {
    let t0 = Instant::now();
    let n = network.cache_count();
    shard::validate(n, groups, catalog, trace, config.fault_schedule())?;
    let plan = shard::RequestPartition::build(groups, trace);
    let plan_ms = ms_since(t0);

    let t1 = Instant::now();
    let shard_results: Vec<(SimReport, u64)> =
        ecg_par::par_map((0..groups.group_count()).collect(), |g| {
            let members = &groups.groups()[g];
            let sub_network = shard::member_network(network, members);
            let sub_schedule = shard::member_schedule(config.fault_schedule(), groups, g);
            let sub_trace = plan.subtrace(g);
            let report = ecg_sim::simulate_with_faults(
                &sub_network,
                &GroupMap::one_group(members.len()),
                catalog,
                &sub_trace,
                *config.sim_config(),
                &sub_schedule,
            )
            .expect("shard inputs were validated up front");
            (report, sub_trace.len() as u64)
        });
    let shards_ms = ms_since(t1);

    let t2 = Instant::now();
    let (report, shard_events) = merge_reports(n, groups, config.fault_schedule(), shard_results);
    let merge_ms = ms_since(t2);

    let out = ReplayReport {
        report,
        timings: ReplayTimings {
            plan_ms,
            shards_ms,
            merge_ms,
        },
        shards: groups.group_count(),
        shard_events,
    };
    record_obs(obs, &out, n, trace.len() as u64);
    Ok(out)
}

/// Replays a *streamed* workload sharded per group: no global trace is
/// ever materialized. Each shard regenerates its members' request
/// streams from the workload's master seed
/// ([`ecg_workload::RequestConfig::stream_cache`]), k-way-merges them
/// with the shared update log, and simulates over its members'
/// sub-topology read straight from the [`RttSource`] oracle (node 0 is
/// the origin, node `i + 1` is cache `i`).
///
/// The merged report is bit-identical to running the monolithic
/// simulator over [`StreamedWorkload::materialize_trace`] and the
/// materialized full RTT matrix — see that method for the exact
/// equivalent input.
///
/// # Errors
///
/// [`SimError`] on group/oracle size mismatch, an update referencing an
/// unknown document, or an invalid fault schedule.
pub fn replay_streamed(
    rtt: &dyn RttSource,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    workload: &StreamedWorkload<'_>,
    config: &ReplayConfig,
) -> Result<SimReport, SimError> {
    replay_streamed_observed(rtt, groups, catalog, workload, config, None).map(|r| r.report)
}

/// Like [`replay_streamed`], returning stage timings and recording
/// `replay.*` telemetry into `obs` when one is supplied (deterministic
/// values only, as in [`replay_sharded_observed`]).
///
/// # Errors
///
/// Exactly as [`replay_streamed`].
pub fn replay_streamed_observed(
    rtt: &dyn RttSource,
    groups: &GroupMap,
    catalog: &DocumentCatalog,
    workload: &StreamedWorkload<'_>,
    config: &ReplayConfig,
    obs: Option<&mut Obs>,
) -> Result<ReplayReport, SimError> {
    let t0 = Instant::now();
    let n = rtt.node_count().saturating_sub(1);
    stream::validate(n, groups, catalog, workload, config.fault_schedule())?;
    // One shared sampler: it is read-only and identical to the one the
    // eager generator builds, so shards can borrow it concurrently.
    let zipf = ZipfSampler::new(catalog.len(), workload.zipf_exponent());
    let plan_ms = ms_since(t0);

    let t1 = Instant::now();
    let shard_results: Vec<(SimReport, u64)> =
        ecg_par::par_map((0..groups.group_count()).collect(), |g| {
            let members = &groups.groups()[g];
            let sub_network = stream::member_network(rtt, members);
            let sub_schedule = shard::member_schedule(config.fault_schedule(), groups, g);
            let sub_trace = stream::member_subtrace(workload, &zipf, members);
            let report = ecg_sim::simulate_with_faults(
                &sub_network,
                &GroupMap::one_group(members.len()),
                catalog,
                &sub_trace,
                *config.sim_config(),
                &sub_schedule,
            )
            .expect("shard inputs were validated up front");
            (report, sub_trace.len() as u64)
        });
    let shards_ms = ms_since(t1);

    let t2 = Instant::now();
    let (report, shard_events) = merge_reports(n, groups, config.fault_schedule(), shard_results);
    let merge_ms = ms_since(t2);

    let out = ReplayReport {
        report,
        timings: ReplayTimings {
            plan_ms,
            shards_ms,
            merge_ms,
        },
        shards: groups.group_count(),
        shard_events,
    };
    // The streamed path has no global trace; its "input events" figure
    // is the replayed request total plus the shared update log.
    let input_events = report_request_total(&out.report) + workload.update_log().len() as u64;
    record_obs(obs, &out, n, input_events);
    Ok(out)
}

/// Folds per-shard reports into the merged network-wide report, in
/// group order (the order every f64 chain was validated against).
fn merge_reports(
    cache_count: usize,
    groups: &GroupMap,
    schedule: &FaultSchedule,
    shard_results: Vec<(SimReport, u64)>,
) -> (SimReport, u64) {
    let mut metrics = MetricsRecorder::new(cache_count);
    metrics.degradation = DegradationMetrics::new(schedule.timeline_bucket());
    let mut cache_stats = CacheStats::default();
    let mut origin_fetches = 0u64;
    // Every shard applies the full update log, so all shards agree on
    // the applied-update count; an empty network has no shards and no
    // updates applied.
    let mut origin_updates = 0u64;
    let mut shard_events = 0u64;
    for (g, (shard, events)) in shard_results.iter().enumerate() {
        metrics.merge_shard(&groups.groups()[g], &shard.metrics);
        cache_stats += shard.cache_stats;
        origin_fetches += shard.origin_fetches;
        origin_updates = shard.origin_updates;
        shard_events += events;
    }
    (
        SimReport {
            metrics,
            cache_stats,
            origin_updates,
            origin_fetches,
        },
        shard_events,
    )
}

/// Emits the replay-level observability: counters plus a `replay` span
/// with `plan`/`shards`/`merge` children. All values are deterministic
/// (counts, not clocks).
fn record_obs(obs: Option<&mut Obs>, out: &ReplayReport, caches: usize, input_events: u64) {
    let Some(o) = obs else { return };
    o.metrics.add("replay.shards", out.shards as u64);
    o.metrics.add("replay.caches", caches as u64);
    o.metrics.add("replay.input_events", input_events);
    o.metrics.add("replay.shard_events", out.shard_events);
    o.metrics
        .add("replay.requests", report_request_total(&out.report));
    let mut span = o.phases.span("replay");
    span.add_work(out.shards as f64);
    {
        let mut plan = span.child("plan");
        plan.add_work(caches as f64);
    }
    {
        let mut shards = span.child("shards");
        shards.add_work(out.shard_events as f64);
    }
    {
        let mut merge = span.child("merge");
        merge.add_work(out.shards as f64);
    }
}

/// Requests counted by the merged report (all outcomes, post-warmup —
/// the same figure the monolithic report exposes).
fn report_request_total(report: &SimReport) -> u64 {
    report.metrics.total_requests()
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_sim::fault::FaultKind;
    use ecg_topology::fixtures::paper_figure1;
    use ecg_topology::CacheId;
    use ecg_workload::{generate_updates, merge_streams, CatalogConfig, RequestConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (EdgeNetwork, DocumentCatalog, Vec<TraceEvent>) {
        let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let mut rng = StdRng::seed_from_u64(11);
        let catalog = CatalogConfig::default().documents(120).generate(&mut rng);
        let requests = RequestConfig::default()
            .rate_per_sec_per_cache(4.0)
            .generate(&catalog, 6, 20_000.0, &mut rng);
        let updates = generate_updates(&catalog, 20_000.0, &mut rng);
        (network, catalog, merge_streams(&requests, &updates))
    }

    fn two_groups() -> GroupMap {
        GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(2), CacheId(4)],
                vec![CacheId(1), CacheId(3), CacheId(5)],
            ],
        )
        .expect("valid partition")
    }

    #[test]
    fn sharded_matches_monolithic_bit_for_bit() {
        let (network, catalog, trace) = fixture();
        let groups = two_groups();
        let config = ReplayConfig::new();
        let sharded = replay_sharded(&network, &groups, &catalog, &trace, &config).unwrap();
        let monolithic =
            ecg_sim::simulate(&network, &groups, &catalog, &trace, *config.sim_config()).unwrap();
        assert_eq!(sharded, monolithic);
    }

    #[test]
    fn sharded_matches_monolithic_under_faults() {
        let (network, catalog, trace) = fixture();
        let groups = two_groups();
        let mut schedule = FaultSchedule::new().failover_penalty_ms(5.0);
        schedule.push(4_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        schedule.push(9_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        schedule.push(6_000.0, FaultKind::BrownoutStart { factor: 2.5 });
        schedule.push(12_000.0, FaultKind::BrownoutEnd);
        schedule.push(15_000.0, FaultKind::CacheRetire { cache: CacheId(5) });
        let config = ReplayConfig::new().schedule(schedule.clone());
        let sharded = replay_sharded(&network, &groups, &catalog, &trace, &config).unwrap();
        let monolithic = ecg_sim::simulate_with_faults(
            &network,
            &groups,
            &catalog,
            &trace,
            *config.sim_config(),
            &schedule,
        )
        .unwrap();
        assert_eq!(sharded, monolithic);
    }

    #[test]
    fn singleton_groups_shard_per_cache() {
        let (network, catalog, trace) = fixture();
        let groups = GroupMap::singletons(6);
        let config = ReplayConfig::new();
        let sharded = replay_sharded(&network, &groups, &catalog, &trace, &config).unwrap();
        let monolithic =
            ecg_sim::simulate(&network, &groups, &catalog, &trace, *config.sim_config()).unwrap();
        assert_eq!(sharded, monolithic);
    }

    #[test]
    fn replay_rejects_what_simulate_rejects() {
        let (network, catalog, trace) = fixture();
        let bad_groups = GroupMap::one_group(5);
        let err = replay_sharded(
            &network,
            &bad_groups,
            &catalog,
            &trace,
            &ReplayConfig::new(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::CacheCountMismatch { .. }));

        let groups = two_groups();
        let mut bad_schedule = FaultSchedule::new();
        bad_schedule.push(1.0, FaultKind::CacheDown { cache: CacheId(9) });
        let err = replay_sharded(
            &network,
            &groups,
            &catalog,
            &trace,
            &ReplayConfig::new().schedule(bad_schedule),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Fault(_)));
    }

    #[test]
    fn observed_variant_emits_replay_counters_and_identical_report() {
        let (network, catalog, trace) = fixture();
        let groups = two_groups();
        let config = ReplayConfig::new();
        let mut obs = Obs::new();
        let observed =
            replay_sharded_observed(&network, &groups, &catalog, &trace, &config, Some(&mut obs))
                .unwrap();
        let plain = replay_sharded(&network, &groups, &catalog, &trace, &config).unwrap();
        assert_eq!(observed.report, plain);
        assert_eq!(observed.shards, 2);
        assert_eq!(obs.metrics.counter("replay.shards"), 2);
        assert_eq!(obs.metrics.counter("replay.caches"), 6);
        assert_eq!(
            obs.metrics.counter("replay.input_events"),
            trace.len() as u64
        );
        assert!(obs.metrics.counter("replay.shard_events") >= trace.len() as u64);
        assert!(observed.timings.total_ms() >= 0.0);
    }
}
