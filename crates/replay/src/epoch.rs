//! Epoch-spanning replay: one trace, a *sequence* of groupings.
//!
//! A continuously maintained deployment re-forms its groups while
//! traffic keeps flowing: the lifecycle supervisor emits a timeline of
//! **epochs**, each an interval `[start, next_start)` served by one
//! [`GroupMap`]. This module replays a single request/update trace
//! across such a timeline by splitting it at the epoch boundaries and
//! replaying each segment — via the sharded engine in [`crate`] — under
//! its own epoch's grouping, then folding the per-segment reports in
//! epoch order. Absolute timestamps are preserved end to end, so warmup
//! cutoffs and degradation-timeline buckets land exactly where the
//! monolithic simulator would put them.
//!
//! ## Boundary semantics
//!
//! * **Cold restart.** Caches and the origin restart empty at every
//!   epoch boundary — the conservative model of a re-formation that
//!   reshuffles membership (content held under the old grouping is not
//!   guaranteed to be reachable under the new one). With a single
//!   epoch there is no boundary and the result is bit-identical to
//!   [`crate::replay_sharded`] on the same input.
//! * **Fault carry-over.** The global [`FaultSchedule`] is split per
//!   epoch; state that straddles a boundary (a cache still down, a
//!   retirement, an open brownout) is reconstructed from
//!   [`FaultSchedule::carry_state_at`] and re-announced at the epoch
//!   start *before* any in-window event at the same instant (the event
//!   queue's FIFO tie-break preserves push order). Re-announcement
//!   means a crash spanning `k` boundaries is counted `k + 1` times by
//!   the degradation `crashes` counter — it is genuinely announced to
//!   each segment's simulator.
//! * **Determinism.** Segments replay serially in epoch order and each
//!   segment is the thread-invariant sharded replay, so the merged
//!   report is byte-identical at any `ECG_THREADS` setting.

use std::error::Error;
use std::fmt;

use ecg_cache::CacheStats;
use ecg_obs::Obs;
use ecg_sim::fault::FaultKind;
use ecg_sim::{DegradationMetrics, FaultSchedule, GroupMap, MetricsRecorder, SimError, SimReport};
use ecg_topology::{CacheId, EdgeNetwork};
use ecg_workload::{DocumentCatalog, TraceEvent};

use crate::{replay_sharded_observed, ReplayConfig, ReplayTimings};

/// One serving interval of a formation timeline: from `start_ms` until
/// the next epoch's start (or forever, for the last epoch), requests
/// are routed under `groups`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayEpoch {
    /// Simulated time at which this grouping starts serving, ms.
    pub start_ms: f64,
    /// The cache-to-group partition serving the epoch.
    pub groups: GroupMap,
}

impl ReplayEpoch {
    /// Convenience constructor.
    pub fn new(start_ms: f64, groups: GroupMap) -> Self {
        ReplayEpoch { start_ms, groups }
    }
}

/// Why an epoch-spanning replay was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EpochReplayError {
    /// The timeline has no epochs at all.
    NoEpochs,
    /// The first epoch does not start at time zero, so part of the
    /// trace would have no grouping to serve it.
    FirstEpochStart(f64),
    /// Epoch starts must be finite and strictly increasing.
    NonMonotonicStart {
        /// Index of the offending epoch.
        index: usize,
        /// Its start time, ms.
        start_ms: f64,
    },
    /// An epoch's grouping covers a different cache population than the
    /// network.
    CacheCountMismatch {
        /// Index of the offending epoch.
        epoch: usize,
        /// Caches in the network.
        expected: usize,
        /// Caches covered by the epoch's grouping.
        found: usize,
    },
    /// A segment replay failed (same cases as the monolithic
    /// simulator).
    Sim(SimError),
}

impl fmt::Display for EpochReplayError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochReplayError::NoEpochs => write!(out, "timeline has no epochs"),
            EpochReplayError::FirstEpochStart(t) => {
                write!(out, "first epoch starts at {t} ms, must start at 0")
            }
            EpochReplayError::NonMonotonicStart { index, start_ms } => write!(
                out,
                "epoch {index} starts at {start_ms} ms, not after its predecessor"
            ),
            EpochReplayError::CacheCountMismatch {
                epoch,
                expected,
                found,
            } => write!(
                out,
                "epoch {epoch} groups {found} caches but the network has {expected}"
            ),
            EpochReplayError::Sim(e) => write!(out, "segment replay failed: {e}"),
        }
    }
}

impl Error for EpochReplayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EpochReplayError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for EpochReplayError {
    fn from(e: SimError) -> Self {
        EpochReplayError::Sim(e)
    }
}

/// A merged epoch-spanning replay result plus its run telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReplayReport {
    /// The merged simulation report across all epochs.
    pub report: SimReport,
    /// Wall-clock stage timings summed over all segments
    /// (non-deterministic; for benchmarks).
    pub timings: ReplayTimings,
    /// Number of epochs replayed.
    pub epochs: usize,
    /// Total shards across all segments.
    pub shards: usize,
    /// Total events fed across all shards of all segments.
    pub shard_events: u64,
}

/// Replays `trace` across a timeline of groupings, one sharded replay
/// per epoch, and merges the segment reports in epoch order.
///
/// See the [module docs](self) for the boundary semantics. With a
/// single epoch starting at 0 this is bit-identical to
/// [`crate::replay_sharded`].
///
/// # Errors
///
/// [`EpochReplayError`] on an invalid timeline, or any [`SimError`] a
/// segment replay reports.
pub fn replay_epochs(
    network: &EdgeNetwork,
    epochs: &[ReplayEpoch],
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: &ReplayConfig,
) -> Result<SimReport, EpochReplayError> {
    replay_epochs_observed(network, epochs, catalog, trace, config, None).map(|r| r.report)
}

/// Like [`replay_epochs`], returning aggregated timings and recording
/// `replay.epochs` counters plus a `replay_epochs` phase span (one
/// child per epoch, work = segment events) into `obs` when supplied.
/// All observed values are deterministic counts, never wall-clock.
///
/// # Errors
///
/// Exactly as [`replay_epochs`].
pub fn replay_epochs_observed(
    network: &EdgeNetwork,
    epochs: &[ReplayEpoch],
    catalog: &DocumentCatalog,
    trace: &[TraceEvent],
    config: &ReplayConfig,
    obs: Option<&mut Obs>,
) -> Result<EpochReplayReport, EpochReplayError> {
    let n = network.cache_count();
    validate_epochs(n, epochs)?;

    let mut timings = ReplayTimings::default();
    let mut shards = 0usize;
    let mut segment_events: Vec<u64> = Vec::with_capacity(epochs.len());
    let mut segments: Vec<SimReport> = Vec::with_capacity(epochs.len());
    for (i, epoch) in epochs.iter().enumerate() {
        let end_ms = epochs.get(i + 1).map_or(f64::INFINITY, |e| e.start_ms);
        let segment_trace: Vec<TraceEvent> = trace
            .iter()
            .filter(|e| e.time_ms() >= epoch.start_ms && e.time_ms() < end_ms)
            .copied()
            .collect();
        let segment_config =
            ReplayConfig::new()
                .sim(*config.sim_config())
                .schedule(segment_schedule(
                    config.fault_schedule(),
                    epoch.start_ms,
                    end_ms,
                ));
        let seg = replay_sharded_observed(
            network,
            &epoch.groups,
            catalog,
            &segment_trace,
            &segment_config,
            None,
        )?;
        timings.plan_ms += seg.timings.plan_ms;
        timings.shards_ms += seg.timings.shards_ms;
        timings.merge_ms += seg.timings.merge_ms;
        shards += seg.shards;
        segment_events.push(seg.shard_events);
        segments.push(seg.report);
    }

    let report = merge_segments(n, config.fault_schedule().timeline_bucket(), &segments);
    let out = EpochReplayReport {
        report,
        timings,
        epochs: epochs.len(),
        shards,
        shard_events: segment_events.iter().sum(),
    };
    if let Some(o) = obs {
        o.metrics.add("replay.epochs", out.epochs as u64);
        o.metrics.add("replay.epoch_shards", out.shards as u64);
        o.metrics.add("replay.epoch_events", out.shard_events);
        let mut span = o.phases.span("replay_epochs");
        span.add_work(out.epochs as f64);
        for (i, events) in segment_events.iter().enumerate() {
            let mut child = span.child(&format!("epoch{i}"));
            child.add_work(*events as f64);
        }
    }
    Ok(out)
}

/// Checks the timeline invariants: at least one epoch, first at time 0,
/// finite strictly-increasing starts, every grouping covering the full
/// cache population.
fn validate_epochs(n: usize, epochs: &[ReplayEpoch]) -> Result<(), EpochReplayError> {
    let first = epochs.first().ok_or(EpochReplayError::NoEpochs)?;
    if first.start_ms != 0.0 {
        return Err(EpochReplayError::FirstEpochStart(first.start_ms));
    }
    for (i, e) in epochs.iter().enumerate() {
        if !e.start_ms.is_finite() || (i > 0 && e.start_ms <= epochs[i - 1].start_ms) {
            return Err(EpochReplayError::NonMonotonicStart {
                index: i,
                start_ms: e.start_ms,
            });
        }
        if e.groups.cache_count() != n {
            return Err(EpochReplayError::CacheCountMismatch {
                epoch: i,
                expected: n,
                found: e.groups.cache_count(),
            });
        }
    }
    Ok(())
}

/// The fault schedule one epoch's segment replays: carried-over state
/// re-announced at the epoch start, then every in-window event, knobs
/// preserved. Carry events are pushed *first* so the simulator's FIFO
/// tie-break applies them before same-instant in-window events.
fn segment_schedule(full: &FaultSchedule, start_ms: f64, end_ms: f64) -> FaultSchedule {
    let mut seg = FaultSchedule::new()
        .failover_penalty_ms(full.failover_penalty())
        .timeline_bucket_ms(full.timeline_bucket());
    let carry = full.carry_state_at(start_ms);
    for &cache in &carry.retired {
        seg.push(start_ms, FaultKind::CacheRetire { cache });
    }
    for &cache in &carry.down {
        seg.push(start_ms, FaultKind::CacheDown { cache });
    }
    if let Some(factor) = carry.brownout_factor {
        seg.push(start_ms, FaultKind::BrownoutStart { factor });
    }
    for e in full.events() {
        if e.time_ms >= start_ms && e.time_ms < end_ms {
            seg.push(e.time_ms, e.kind);
        }
    }
    seg
}

/// Folds per-epoch reports into one network-wide report, in epoch
/// order. Unlike the within-segment shard merge (where every shard
/// replays the full update log), segments split the update log between
/// them, so `origin_updates` is summed.
fn merge_segments(cache_count: usize, bucket_ms: f64, segments: &[SimReport]) -> SimReport {
    let mut metrics = MetricsRecorder::new(cache_count);
    metrics.degradation = DegradationMetrics::new(bucket_ms);
    let identity: Vec<CacheId> = (0..cache_count).map(CacheId).collect();
    let mut cache_stats = CacheStats::default();
    let mut origin_fetches = 0u64;
    let mut origin_updates = 0u64;
    for seg in segments {
        metrics.merge_shard(&identity, &seg.metrics);
        cache_stats += seg.cache_stats;
        origin_fetches += seg.origin_fetches;
        origin_updates += seg.origin_updates;
    }
    SimReport {
        metrics,
        cache_stats,
        origin_updates,
        origin_fetches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_topology::fixtures::paper_figure1;
    use ecg_workload::{generate_updates, merge_streams, CatalogConfig, RequestConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (EdgeNetwork, DocumentCatalog, Vec<TraceEvent>) {
        let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let mut rng = StdRng::seed_from_u64(21);
        let catalog = CatalogConfig::default().documents(100).generate(&mut rng);
        let requests = RequestConfig::default()
            .rate_per_sec_per_cache(4.0)
            .generate(&catalog, 6, 20_000.0, &mut rng);
        let updates = generate_updates(&catalog, 20_000.0, &mut rng);
        (network, catalog, merge_streams(&requests, &updates))
    }

    fn pairs() -> GroupMap {
        GroupMap::new(
            6,
            vec![
                vec![CacheId(0), CacheId(1)],
                vec![CacheId(2), CacheId(3)],
                vec![CacheId(4), CacheId(5)],
            ],
        )
        .expect("valid partition")
    }

    #[test]
    fn single_epoch_is_bit_identical_to_sharded_replay() {
        let (network, catalog, trace) = fixture();
        let mut schedule = FaultSchedule::new();
        schedule.push(4_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        schedule.push(9_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        let config = ReplayConfig::new().schedule(schedule);
        let epochs = [ReplayEpoch::new(0.0, pairs())];
        let merged = replay_epochs(&network, &epochs, &catalog, &trace, &config).unwrap();
        let flat = crate::replay_sharded(&network, &pairs(), &catalog, &trace, &config).unwrap();
        assert_eq!(merged, flat);
    }

    #[test]
    fn epoch_switch_changes_serving_groups() {
        let (network, catalog, trace) = fixture();
        let config = ReplayConfig::new();
        let epochs = [
            ReplayEpoch::new(0.0, GroupMap::one_group(6)),
            ReplayEpoch::new(10_000.0, GroupMap::singletons(6)),
        ];
        let merged = replay_epochs(&network, &epochs, &catalog, &trace, &config).unwrap();
        // Request conservation: splitting the trace loses nothing.
        let flat =
            crate::replay_sharded(&network, &GroupMap::one_group(6), &catalog, &trace, &config)
                .unwrap();
        assert_eq!(
            merged.metrics.total_requests(),
            flat.metrics.total_requests()
        );
        // Singleton epochs have no peers: the merged run must show
        // strictly fewer peer hits than serving one big group
        // throughout.
        let peer_hits =
            |r: &SimReport| -> u64 { r.metrics.per_cache().iter().map(|a| a.peer_hits).sum() };
        assert!(peer_hits(&merged) < peer_hits(&flat));
        // And byte-stable: same inputs, same bytes.
        let again = replay_epochs(&network, &epochs, &catalog, &trace, &config).unwrap();
        assert_eq!(merged, again);
    }

    #[test]
    fn faults_carry_across_epoch_boundaries() {
        let (network, catalog, trace) = fixture();
        // Down at 4 s, recovering at 15 s — spanning the 10 s boundary —
        // plus a brownout open across it and a permanent retirement.
        let mut schedule = FaultSchedule::new();
        schedule.push(4_000.0, FaultKind::CacheDown { cache: CacheId(2) });
        schedule.push(15_000.0, FaultKind::CacheUp { cache: CacheId(2) });
        schedule.push(6_000.0, FaultKind::BrownoutStart { factor: 3.0 });
        schedule.push(18_000.0, FaultKind::BrownoutEnd);
        schedule.push(2_000.0, FaultKind::CacheRetire { cache: CacheId(5) });
        let config = ReplayConfig::new().schedule(schedule);
        let epochs = [
            ReplayEpoch::new(0.0, pairs()),
            ReplayEpoch::new(10_000.0, pairs()),
        ];
        let merged = replay_epochs(&network, &epochs, &catalog, &trace, &config).unwrap();
        let d = &merged.metrics.degradation;
        // The boundary re-announces the open crash and the retirement:
        // one announcement per segment that sees them.
        assert_eq!(d.crashes, 2, "crash announced in both segments");
        assert_eq!(d.recoveries, 1, "recovery only in the second");
        assert_eq!(d.retirements, 2, "retirement re-announced");
        assert!(d.saw_faults());
    }

    #[test]
    fn epoch_replay_is_thread_invariant() {
        let (network, catalog, trace) = fixture();
        let epochs = [
            ReplayEpoch::new(0.0, GroupMap::one_group(6)),
            ReplayEpoch::new(8_000.0, pairs()),
            ReplayEpoch::new(14_000.0, GroupMap::singletons(6)),
        ];
        let config = ReplayConfig::new();
        ecg_par::set_max_threads(Some(1));
        let serial = replay_epochs(&network, &epochs, &catalog, &trace, &config);
        ecg_par::set_max_threads(Some(4));
        let parallel = replay_epochs(&network, &epochs, &catalog, &trace, &config);
        ecg_par::set_max_threads(None);
        assert_eq!(serial.unwrap(), parallel.unwrap());
    }

    #[test]
    fn invalid_timelines_are_rejected() {
        let (network, catalog, trace) = fixture();
        let config = ReplayConfig::new();
        let run = |epochs: &[ReplayEpoch]| {
            replay_epochs(&network, epochs, &catalog, &trace, &config).unwrap_err()
        };
        assert_eq!(run(&[]), EpochReplayError::NoEpochs);
        assert_eq!(
            run(&[ReplayEpoch::new(5.0, pairs())]),
            EpochReplayError::FirstEpochStart(5.0)
        );
        assert!(matches!(
            run(&[
                ReplayEpoch::new(0.0, pairs()),
                ReplayEpoch::new(3_000.0, pairs()),
                ReplayEpoch::new(3_000.0, pairs()),
            ]),
            EpochReplayError::NonMonotonicStart { index: 2, .. }
        ));
        assert!(matches!(
            run(&[
                ReplayEpoch::new(0.0, pairs()),
                ReplayEpoch::new(2_000.0, GroupMap::one_group(5)),
            ]),
            EpochReplayError::CacheCountMismatch {
                epoch: 1,
                expected: 6,
                found: 5
            }
        ));
        // Errors display something human-readable.
        assert!(run(&[]).to_string().contains("no epochs"));
    }

    #[test]
    fn observed_variant_matches_plain_and_counts_epochs() {
        let (network, catalog, trace) = fixture();
        let epochs = [
            ReplayEpoch::new(0.0, pairs()),
            ReplayEpoch::new(10_000.0, GroupMap::one_group(6)),
        ];
        let config = ReplayConfig::new();
        let mut obs = Obs::new();
        let observed =
            replay_epochs_observed(&network, &epochs, &catalog, &trace, &config, Some(&mut obs))
                .unwrap();
        let plain = replay_epochs(&network, &epochs, &catalog, &trace, &config).unwrap();
        assert_eq!(observed.report, plain);
        assert_eq!(observed.epochs, 2);
        assert_eq!(observed.shards, 4, "three pairs + one big group");
        assert_eq!(obs.metrics.counter("replay.epochs"), 2);
        assert_eq!(
            obs.metrics.counter("replay.epoch_events"),
            observed.shard_events
        );
    }
}
