//! Property test: `FaultPlan` JSON round-trips exactly.
//!
//! For any plan the builder DSL can produce, `to_json` → `from_json` →
//! `to_json` must be the identity on both the value and the bytes —
//! this is what lets plan files be re-emitted without drifting the
//! determinism goldens that diff them.

use ecg_faults::FaultPlan;
use ecg_topology::CacheId;
use proptest::prelude::*;

/// One builder call, sampled independently.
#[derive(Debug, Clone)]
enum PlanOp {
    Crash { cache: usize, at: f64, down: f64 },
    Retire { cache: usize, at: f64 },
    Brownout { at: f64, dur: f64, factor: f64 },
}

fn arb_op() -> impl Strategy<Value = PlanOp> {
    prop_oneof![
        (0usize..16, 0.0f64..1e6, 1.0f64..1e5).prop_map(|(cache, at, down)| PlanOp::Crash {
            cache,
            at,
            down
        }),
        (0usize..16, 0.0f64..1e6).prop_map(|(cache, at)| PlanOp::Retire { cache, at }),
        (0.0f64..1e6, 1.0f64..1e5, 1.0f64..8.0).prop_map(|(at, dur, factor)| PlanOp::Brownout {
            at,
            dur,
            factor
        }),
    ]
}

fn build(ops: &[PlanOp], knobs: (f64, f64, Option<(f64, f64)>)) -> FaultPlan {
    let (penalty, bucket, probe) = knobs;
    let mut plan = FaultPlan::new()
        .failover_penalty_ms(penalty)
        .timeline_bucket_ms(bucket);
    if let Some((loss, timeout)) = probe {
        plan = plan.probe_loss(loss, timeout);
    }
    for op in ops {
        plan = match *op {
            PlanOp::Crash { cache, at, down } => plan.crash(CacheId(cache), at, down),
            PlanOp::Retire { cache, at } => plan.retire(CacheId(cache), at),
            PlanOp::Brownout { at, dur, factor } => plan.brownout(at, dur, factor),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serialize_parse_serialize_is_identity(
        ops in proptest::collection::vec(arb_op(), 0..24),
        penalty in 0.0f64..100.0,
        bucket in 100.0f64..1e5,
        probe_set in any::<bool>(),
        loss in 0.0f64..0.95,
        timeout in 10.0f64..1e4,
    ) {
        let probe = if probe_set { Some((loss, timeout)) } else { None };
        let plan = build(&ops, (penalty, bucket, probe));

        let json = plan.to_json();
        let parsed = FaultPlan::from_json(&json).expect("emitted JSON parses");
        // Value identity: every event (in build order) and every knob.
        prop_assert_eq!(&parsed, &plan);
        // Byte identity: re-serialization reproduces the exact document.
        prop_assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn parsed_plans_compile_to_the_same_schedule(
        ops in proptest::collection::vec(arb_op(), 1..12),
    ) {
        let plan = build(&ops, (3.0, 10_000.0, None));
        let parsed = FaultPlan::from_json(&plan.to_json()).expect("parses");
        prop_assert_eq!(parsed.schedule(), plan.schedule());
        prop_assert_eq!(
            parsed.probe_config(Default::default()),
            plan.probe_config(Default::default())
        );
    }
}
