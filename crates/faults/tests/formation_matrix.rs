//! Fault-matrix integration test for the resilient formation pipeline.
//!
//! Sweeps probe loss × {no faults, landmark crash, correlated
//! stub-domain outage, everything at once} through the full
//! [`FormationFaults`] → [`ecg_coords::ProbeFaults`] →
//! [`GfCoordinator::form_groups_faulted`] path and asserts that every
//! cell completes without panicking, reports a consistent
//! [`FormationHealth`] (exactly the crashed caches quarantined, dead
//! landmarks drawn from the crash set, a full partition of the
//! survivors), and produces bit-identical output whether the
//! data-parallel kernels run on one thread or four.
//!
//! The whole matrix lives in a single `#[test]` because
//! `ecg_par::set_max_threads` is process-global; a second test in this
//! binary would race it.

use ecg_coords::{ProbeConfig, ProbeFaults};
use ecg_core::{FormationHealth, GfCoordinator, GroupingOutcome, ResilienceConfig, SchemeConfig};
use ecg_faults::FormationFaults;
use ecg_topology::{CacheId, EdgeNetwork, OriginPlacement, TransitStubConfig, TransitStubTopology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CACHES: usize = 24;
const GROUPS: usize = 4;
const SEED: u64 = 0x5EED_FA17;

fn build_network() -> (TransitStubTopology, EdgeNetwork) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let topo = TransitStubConfig::for_caches(CACHES).generate(&mut rng);
    let network =
        EdgeNetwork::place(&topo, CACHES, OriginPlacement::TransitNode, &mut rng).unwrap();
    (topo, network)
}

fn form(network: &EdgeNetwork, faults: &ProbeFaults, loss: f64, cell_seed: u64) -> GroupingOutcome {
    let config = SchemeConfig::sl(GROUPS)
        .probe(ProbeConfig::default().loss_rate(loss))
        .resilience(ResilienceConfig::default());
    let mut rng = StdRng::seed_from_u64(cell_seed);
    GfCoordinator::new(config)
        .form_groups_faulted(network, faults, &mut rng)
        .expect("faulted formation must still produce a grouping")
}

fn assert_outcomes_identical(a: &GroupingOutcome, b: &GroupingOutcome, cell: &str) {
    assert_eq!(
        a.assignments(),
        b.assignments(),
        "assignments differ: {cell}"
    );
    assert_eq!(a.groups(), b.groups(), "groups differ: {cell}");
    assert_eq!(
        a.landmarks().landmarks,
        b.landmarks().landmarks,
        "landmarks differ: {cell}"
    );
    assert_eq!(
        a.probes_sent(),
        b.probes_sent(),
        "probe count differs: {cell}"
    );
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(a.server_distances_ms()),
        bits(b.server_distances_ms()),
        "server distances differ: {cell}"
    );
    assert_eq!(
        bits(a.points().as_flat()),
        bits(b.points().as_flat()),
        "feature matrices differ: {cell}"
    );
    assert_eq!(a.health(), b.health(), "health reports differ: {cell}");
}

fn assert_health_consistent(outcome: &GroupingOutcome, crashed: &[CacheId], cell: &str) {
    let health: &FormationHealth = outcome
        .health()
        .expect("resilient runs always report health");

    // Exactly the crashed caches are quarantined: a dead cache observes
    // nothing, a live one (with the default one-feature floor) always
    // observes something.
    assert_eq!(health.quarantined, crashed, "quarantine set: {cell}");

    // Dead landmarks are prober node indices of crashed caches, and
    // every one of them was failed over.
    for &node in &health.dead_landmarks {
        assert!(
            crashed.iter().any(|c| c.index() + 1 == node),
            "dead landmark node {node} is not a crashed cache: {cell}"
        );
    }
    assert!(
        health.landmark_failovers >= health.dead_landmarks.len(),
        "failover count below dead-landmark count: {cell}"
    );

    // Surviving landmarks are alive.
    for &lm in &outcome.landmarks().landmarks {
        assert!(
            !crashed.iter().any(|c| c.index() + 1 == lm),
            "crashed node {lm} kept as landmark: {cell}"
        );
    }

    // The grouping is still a full partition (quarantined caches are
    // re-homed, not dropped) into non-empty groups.
    let mut seen = [false; CACHES];
    for (g, group) in outcome.groups().iter().enumerate() {
        assert!(!group.is_empty(), "group {g} is empty: {cell}");
        for &c in group {
            assert!(!seen[c.index()], "cache {c} in two groups: {cell}");
            seen[c.index()] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "cache dropped from grouping: {cell}"
    );

    if crashed.is_empty() {
        assert!(
            health.dead_landmarks.is_empty() && health.landmark_failovers == 0,
            "phantom failover on crash-free network: {cell}"
        );
    }
}

#[test]
fn fault_matrix_completes_consistently_on_any_thread_count() {
    let (topo, network) = build_network();

    // The outage scenario takes out one whole stub domain — the first
    // one hosting at least two caches while leaving enough survivors to
    // cluster.
    let outage = (0..topo.stub_domains().len())
        .map(|d| FormationFaults::new().stub_domain_outage(&topo, &network, d))
        .find(|f| f.crash_count() >= 2 && CACHES - f.crash_count() > GROUPS)
        .expect("no stub domain hosts 2..=19 caches");

    let scenarios: [(&str, FormationFaults); 4] = [
        ("none", FormationFaults::new()),
        ("crash", FormationFaults::new().crash(CacheId(3))),
        ("outage", outage.clone()),
        (
            "crash+outage+blackhole",
            outage
                .crash(CacheId(3))
                .blackhole(CacheId(1), CacheId(2))
                .blackhole_to_origin(CacheId(5)),
        ),
    ];

    for (f, (name, faults)) in scenarios.iter().enumerate() {
        let probe_faults = faults.to_probe_faults();
        let crashed: Vec<CacheId> = faults.crashed_caches().collect();
        for (l, &loss) in [0.0f64, 0.2, 0.4].iter().enumerate() {
            let cell = format!("loss={loss} faults={name}");
            let cell_seed = SEED ^ ((f as u64) << 8) ^ l as u64;

            ecg_par::set_max_threads(Some(1));
            let single = form(&network, &probe_faults, loss, cell_seed);
            ecg_par::set_max_threads(Some(4));
            let quad = form(&network, &probe_faults, loss, cell_seed);
            ecg_par::set_max_threads(None);

            assert_health_consistent(&single, &crashed, &cell);
            assert_outcomes_identical(&single, &quad, &cell);
        }
    }
}
