//! The operator-facing fault plan.
//!
//! [`FaultPlan`] is a builder DSL over the simulator's low-level
//! [`FaultSchedule`]: it speaks in whole outages (a crash *with* its
//! recovery, a brownout *window*) instead of raw start/stop events, and
//! carries the probe-degradation knobs that apply to group-maintenance
//! probing rather than to the request path.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use ecg_coords::ProbeConfig;
use ecg_sim::fault::{FaultEvent, FaultKind, FaultSchedule};
use ecg_topology::CacheId;

use crate::json::f;
use crate::jsonparse::{self, JsonValue};

/// Schema tag written into (and required from) plan JSON documents.
const PLAN_SCHEMA: &str = "ecg-faultplan/v1";

/// Why a [`FaultPlan::from_json`] call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanParseError {
    /// The document is not well-formed JSON (of the subset the
    /// workspace emits).
    Syntax(String),
    /// The document parses but is not an `ecg-faultplan/v1` object.
    Schema(String),
    /// A field is missing, of the wrong type, or out of its legal range.
    Field {
        /// The offending field (dotted path for event fields).
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanParseError::Syntax(msg) => write!(out, "malformed JSON: {msg}"),
            PlanParseError::Schema(found) => {
                write!(out, "expected schema {PLAN_SCHEMA:?}, found {found}")
            }
            PlanParseError::Field { field, reason } => {
                write!(out, "bad field {field:?}: {reason}")
            }
        }
    }
}

impl Error for PlanParseError {}

/// A declarative script of faults to inject into a simulation run.
///
/// Build one with the chained methods, then hand
/// [`FaultPlan::schedule`] to
/// [`ecg_sim::simulate_with_faults`] and (optionally)
/// [`FaultPlan::probe_config`] to maintenance-time probing.
///
/// # Examples
///
/// ```
/// use ecg_faults::FaultPlan;
/// use ecg_topology::CacheId;
///
/// let plan = FaultPlan::new()
///     .crash(CacheId(2), 10_000.0, 30_000.0) // down 10s in, back 30s later
///     .retire(CacheId(5), 60_000.0)
///     .brownout(90_000.0, 15_000.0, 4.0);
/// assert_eq!(plan.schedule().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    failover_penalty_ms: f64,
    timeline_bucket_ms: f64,
    probe_loss_rate: f64,
    probe_timeout_ms: Option<f64>,
}

impl Default for FaultPlan {
    /// An empty plan: no faults, simulator-default failover penalty and
    /// timeline buckets, healthy probing.
    fn default() -> Self {
        let defaults = FaultSchedule::default();
        FaultPlan {
            events: Vec::new(),
            failover_penalty_ms: defaults.failover_penalty(),
            timeline_bucket_ms: defaults.timeline_bucket(),
            probe_loss_rate: 0.0,
            probe_timeout_ms: None,
        }
    }
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crashes `cache` at `at_ms` and brings it back (cold) after
    /// `down_for_ms`.
    ///
    /// # Panics
    ///
    /// Panics if either time is not finite and non-negative, or
    /// `down_for_ms` is zero.
    pub fn crash(mut self, cache: CacheId, at_ms: f64, down_for_ms: f64) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "crash time must be >= 0");
        assert!(
            down_for_ms.is_finite() && down_for_ms > 0.0,
            "downtime must be > 0"
        );
        self.events.push(FaultEvent {
            time_ms: at_ms,
            kind: FaultKind::CacheDown { cache },
        });
        self.events.push(FaultEvent {
            time_ms: at_ms + down_for_ms,
            kind: FaultKind::CacheUp { cache },
        });
        self
    }

    /// Permanently retires `cache` at `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not finite and non-negative.
    pub fn retire(mut self, cache: CacheId, at_ms: f64) -> Self {
        assert!(
            at_ms.is_finite() && at_ms >= 0.0,
            "retire time must be >= 0"
        );
        self.events.push(FaultEvent {
            time_ms: at_ms,
            kind: FaultKind::CacheRetire { cache },
        });
        self
    }

    /// Slows every origin fetch by `factor` during
    /// `[start_ms, start_ms + duration_ms)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is degenerate or `factor < 1`.
    pub fn brownout(mut self, start_ms: f64, duration_ms: f64, factor: f64) -> Self {
        assert!(
            start_ms.is_finite() && start_ms >= 0.0,
            "brownout start must be >= 0"
        );
        assert!(
            duration_ms.is_finite() && duration_ms > 0.0,
            "brownout duration must be > 0"
        );
        assert!(
            factor.is_finite() && factor >= 1.0,
            "brownout factor must be >= 1"
        );
        self.events.push(FaultEvent {
            time_ms: start_ms,
            kind: FaultKind::BrownoutStart { factor },
        });
        self.events.push(FaultEvent {
            time_ms: start_ms + duration_ms,
            kind: FaultKind::BrownoutEnd,
        });
        self
    }

    /// Sets the client-side failover-detection penalty.
    pub fn failover_penalty_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "penalty must be >= 0");
        self.failover_penalty_ms = ms;
        self
    }

    /// Sets the degradation-timeline bucket width.
    pub fn timeline_bucket_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "bucket width must be > 0");
        self.timeline_bucket_ms = ms;
        self
    }

    /// Degrades maintenance-time probing: each probe is lost with
    /// probability `loss_rate`, and a fully lost measurement reports
    /// `timeout_ms`. Applied by [`FaultPlan::probe_config`].
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1)` or `timeout_ms` is not
    /// positive.
    pub fn probe_loss(mut self, loss_rate: f64, timeout_ms: f64) -> Self {
        assert!(
            loss_rate.is_finite() && (0.0..1.0).contains(&loss_rate),
            "loss rate must be in [0, 1)"
        );
        assert!(
            timeout_ms.is_finite() && timeout_ms > 0.0,
            "timeout must be positive"
        );
        self.probe_loss_rate = loss_rate;
        self.probe_timeout_ms = Some(timeout_ms);
        self
    }

    /// The planned fault events, in build order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Returns `true` if the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compiles the plan into the simulator's [`FaultSchedule`].
    pub fn schedule(&self) -> FaultSchedule {
        let mut schedule = FaultSchedule::new()
            .failover_penalty_ms(self.failover_penalty_ms)
            .timeline_bucket_ms(self.timeline_bucket_ms);
        for e in &self.events {
            schedule.push(e.time_ms, e.kind);
        }
        schedule
    }

    /// Applies the plan's probe-degradation knobs to a base probing
    /// configuration (returns `base` unchanged when no knob was set).
    pub fn probe_config(&self, base: ProbeConfig) -> ProbeConfig {
        let mut cfg = base.loss_rate(self.probe_loss_rate);
        if let Some(timeout) = self.probe_timeout_ms {
            cfg = cfg.timeout_ms(timeout);
        }
        cfg
    }

    /// The client-side failover-detection penalty, in milliseconds.
    pub fn failover_penalty(&self) -> f64 {
        self.failover_penalty_ms
    }

    /// The degradation-timeline bucket width, in milliseconds.
    pub fn timeline_bucket(&self) -> f64 {
        self.timeline_bucket_ms
    }

    /// The maintenance-probe loss rate (`0.0` when probing is healthy).
    pub fn probe_loss_rate(&self) -> f64 {
        self.probe_loss_rate
    }

    /// The lost-probe timeout, if [`FaultPlan::probe_loss`] was set.
    pub fn probe_timeout(&self) -> Option<f64> {
        self.probe_timeout_ms
    }

    /// Serializes the plan to a deterministic single-line JSON object.
    ///
    /// Equal plans always produce byte-identical strings (fixed key
    /// order, shortest-round-trip floats), and
    /// [`FaultPlan::from_json`] recovers the plan exactly — events in
    /// build order, every knob preserved.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecg_faults::FaultPlan;
    /// use ecg_topology::CacheId;
    ///
    /// let plan = FaultPlan::new().crash(CacheId(2), 10_000.0, 5_000.0);
    /// let json = plan.to_json();
    /// assert_eq!(FaultPlan::from_json(&json)?, plan);
    /// # Ok::<(), ecg_faults::PlanParseError>(())
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 64 * self.events.len());
        out.push('{');
        let _ = write!(out, "\"schema\":\"{PLAN_SCHEMA}\",");
        let _ = write!(
            out,
            "\"failover_penalty_ms\":{},",
            f(self.failover_penalty_ms)
        );
        let _ = write!(
            out,
            "\"timeline_bucket_ms\":{},",
            f(self.timeline_bucket_ms)
        );
        let _ = write!(out, "\"probe_loss_rate\":{},", f(self.probe_loss_rate));
        match self.probe_timeout_ms {
            Some(ms) => {
                let _ = write!(out, "\"probe_timeout_ms\":{},", f(ms));
            }
            None => out.push_str("\"probe_timeout_ms\":null,"),
        }
        out.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t\":{},", f(e.time_ms));
            match e.kind {
                FaultKind::CacheDown { cache } => {
                    let _ = write!(out, "\"kind\":\"cache_down\",\"cache\":{}", cache.index());
                }
                FaultKind::CacheUp { cache } => {
                    let _ = write!(out, "\"kind\":\"cache_up\",\"cache\":{}", cache.index());
                }
                FaultKind::CacheRetire { cache } => {
                    let _ = write!(out, "\"kind\":\"cache_retire\",\"cache\":{}", cache.index());
                }
                FaultKind::BrownoutStart { factor } => {
                    let _ = write!(out, "\"kind\":\"brownout_start\",\"factor\":{}", f(factor));
                }
                FaultKind::BrownoutEnd => out.push_str("\"kind\":\"brownout_end\""),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a plan previously written by [`FaultPlan::to_json`].
    ///
    /// # Errors
    ///
    /// [`PlanParseError`] on malformed JSON, a missing/mismatched
    /// `schema` tag, or any field outside the range the builder methods
    /// enforce (so a parsed plan is always one the builders could have
    /// produced).
    pub fn from_json(text: &str) -> Result<FaultPlan, PlanParseError> {
        let doc = jsonparse::parse(text).map_err(PlanParseError::Syntax)?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(PLAN_SCHEMA) => {}
            Some(other) => return Err(PlanParseError::Schema(format!("{other:?}"))),
            None => return Err(PlanParseError::Schema("none".to_string())),
        }
        let failover_penalty_ms = require_f64(&doc, "failover_penalty_ms", |v| v >= 0.0)?;
        let timeline_bucket_ms = require_f64(&doc, "timeline_bucket_ms", |v| v > 0.0)?;
        let probe_loss_rate = require_f64(&doc, "probe_loss_rate", |v| (0.0..1.0).contains(&v))?;
        let probe_timeout_ms = match doc.get("probe_timeout_ms") {
            Some(v) if v.is_null() => None,
            Some(_) => Some(require_f64(&doc, "probe_timeout_ms", |v| v > 0.0)?),
            None => {
                return Err(PlanParseError::Field {
                    field: "probe_timeout_ms",
                    reason: "missing".to_string(),
                })
            }
        };
        let raw_events =
            doc.get("events")
                .and_then(JsonValue::as_arr)
                .ok_or(PlanParseError::Field {
                    field: "events",
                    reason: "missing or not an array".to_string(),
                })?;
        let mut events = Vec::with_capacity(raw_events.len());
        for e in raw_events {
            events.push(parse_event(e)?);
        }
        Ok(FaultPlan {
            events,
            failover_penalty_ms,
            timeline_bucket_ms,
            probe_loss_rate,
            probe_timeout_ms,
        })
    }
}

/// Reads a finite numeric field satisfying `legal` from `doc`. `field`
/// is the dotted path used in error messages; the lookup key is its
/// last segment.
fn require_f64(
    doc: &JsonValue,
    field: &'static str,
    legal: impl Fn(f64) -> bool,
) -> Result<f64, PlanParseError> {
    let key = field.rsplit('.').next().unwrap_or(field);
    let v = doc
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or(PlanParseError::Field {
            field,
            reason: "missing or not a number".to_string(),
        })?;
    if v.is_finite() && legal(v) {
        Ok(v)
    } else {
        Err(PlanParseError::Field {
            field,
            reason: format!("{v} is out of range"),
        })
    }
}

/// Decodes one entry of the `events` array.
fn parse_event(e: &JsonValue) -> Result<FaultEvent, PlanParseError> {
    let time_ms = require_f64(e, "events[].t", |v| v >= 0.0)?;
    let kind_tag = e
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or(PlanParseError::Field {
            field: "events[].kind",
            reason: "missing or not a string".to_string(),
        })?;
    let cache = || -> Result<CacheId, PlanParseError> {
        let idx = require_f64(e, "events[].cache", |v| v >= 0.0 && v.fract() == 0.0)?;
        Ok(CacheId(idx as usize))
    };
    let kind = match kind_tag {
        "cache_down" => FaultKind::CacheDown { cache: cache()? },
        "cache_up" => FaultKind::CacheUp { cache: cache()? },
        "cache_retire" => FaultKind::CacheRetire { cache: cache()? },
        "brownout_start" => FaultKind::BrownoutStart {
            factor: require_f64(e, "events[].factor", |v| v >= 1.0)?,
        },
        "brownout_end" => FaultKind::BrownoutEnd,
        other => {
            return Err(PlanParseError::Field {
                field: "events[].kind",
                reason: format!("unknown kind {other:?}"),
            })
        }
    };
    Ok(FaultEvent { time_ms, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_expands_to_down_then_up() {
        let plan = FaultPlan::new().crash(CacheId(1), 100.0, 50.0);
        let events = plan.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time_ms, 100.0);
        assert_eq!(events[0].kind, FaultKind::CacheDown { cache: CacheId(1) });
        assert_eq!(events[1].time_ms, 150.0);
        assert_eq!(events[1].kind, FaultKind::CacheUp { cache: CacheId(1) });
    }

    #[test]
    fn brownout_expands_to_window() {
        let plan = FaultPlan::new().brownout(10.0, 5.0, 2.5);
        let s = plan.schedule();
        assert!(s.validate(0).is_ok());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn schedule_carries_knobs() {
        let plan = FaultPlan::new()
            .failover_penalty_ms(42.0)
            .timeline_bucket_ms(500.0);
        let s = plan.schedule();
        assert_eq!(s.failover_penalty(), 42.0);
        assert_eq!(s.timeline_bucket(), 500.0);
    }

    #[test]
    fn probe_knobs_apply_to_base_config() {
        let plan = FaultPlan::new().probe_loss(0.25, 2_000.0);
        let cfg = plan.probe_config(ProbeConfig::noiseless());
        assert_eq!(cfg.loss(), 0.25);
        assert_eq!(cfg.timeout(), 2_000.0);
        // Without knobs the base passes through untouched.
        let cfg = FaultPlan::new().probe_config(ProbeConfig::default());
        assert_eq!(cfg, ProbeConfig::default());
    }

    #[test]
    fn empty_plan_compiles_to_empty_schedule() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let s = plan.schedule();
        assert!(s.is_empty());
        assert_eq!(s, FaultSchedule::new());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let plan = FaultPlan::new()
            .crash(CacheId(1), 100.0, 50.5)
            .retire(CacheId(3), 2_000.25)
            .brownout(5_000.0, 1_000.0, 2.5)
            .failover_penalty_ms(12.5)
            .timeline_bucket_ms(500.0)
            .probe_loss(0.25, 2_000.0);
        let json = plan.to_json();
        let parsed = FaultPlan::from_json(&json).expect("parses");
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_json(), json, "serialize → parse → serialize");
    }

    #[test]
    fn default_plan_round_trips_with_null_timeout() {
        let plan = FaultPlan::new();
        let json = plan.to_json();
        assert!(json.contains("\"probe_timeout_ms\":null"));
        assert!(json.contains("\"schema\":\"ecg-faultplan/v1\""));
        assert!(json.ends_with("\"events\":[]}"));
        assert_eq!(FaultPlan::from_json(&json).expect("parses"), plan);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        // Malformed JSON.
        assert!(matches!(
            FaultPlan::from_json("{"),
            Err(PlanParseError::Syntax(_))
        ));
        // Wrong or missing schema.
        assert!(matches!(
            FaultPlan::from_json("{\"schema\":\"other/v9\"}"),
            Err(PlanParseError::Schema(_))
        ));
        assert!(matches!(
            FaultPlan::from_json("{}"),
            Err(PlanParseError::Schema(_))
        ));
        // Out-of-range knob: builders would have panicked, the parser
        // must reject.
        let bad = FaultPlan::new()
            .to_json()
            .replace("\"probe_loss_rate\":0", "\"probe_loss_rate\":1.5");
        assert!(matches!(
            FaultPlan::from_json(&bad),
            Err(PlanParseError::Field {
                field: "probe_loss_rate",
                ..
            })
        ));
        // Unknown event kind.
        let bad = FaultPlan::new()
            .retire(CacheId(0), 1.0)
            .to_json()
            .replace("cache_retire", "cache_explode");
        let err = FaultPlan::from_json(&bad).expect_err("rejected");
        assert!(err.to_string().contains("cache_explode"), "{err}");
        // Fractional cache id.
        let bad = FaultPlan::new()
            .retire(CacheId(2), 1.0)
            .to_json()
            .replace("\"cache\":2", "\"cache\":2.5");
        assert!(FaultPlan::from_json(&bad).is_err());
    }

    #[test]
    fn knob_accessors_mirror_builders() {
        let plan = FaultPlan::new()
            .failover_penalty_ms(9.0)
            .timeline_bucket_ms(250.0)
            .probe_loss(0.1, 750.0);
        assert_eq!(plan.failover_penalty(), 9.0);
        assert_eq!(plan.timeline_bucket(), 250.0);
        assert_eq!(plan.probe_loss_rate(), 0.1);
        assert_eq!(plan.probe_timeout(), Some(750.0));
        assert_eq!(FaultPlan::new().probe_timeout(), None);
    }

    #[test]
    #[should_panic(expected = "downtime")]
    fn zero_downtime_rejected() {
        let _ = FaultPlan::new().crash(CacheId(0), 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn speedup_brownout_rejected() {
        let _ = FaultPlan::new().brownout(0.0, 10.0, 0.9);
    }
}
