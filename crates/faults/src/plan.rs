//! The operator-facing fault plan.
//!
//! [`FaultPlan`] is a builder DSL over the simulator's low-level
//! [`FaultSchedule`]: it speaks in whole outages (a crash *with* its
//! recovery, a brownout *window*) instead of raw start/stop events, and
//! carries the probe-degradation knobs that apply to group-maintenance
//! probing rather than to the request path.

use ecg_coords::ProbeConfig;
use ecg_sim::fault::{FaultEvent, FaultKind, FaultSchedule};
use ecg_topology::CacheId;

/// A declarative script of faults to inject into a simulation run.
///
/// Build one with the chained methods, then hand
/// [`FaultPlan::schedule`] to
/// [`ecg_sim::simulate_with_faults`] and (optionally)
/// [`FaultPlan::probe_config`] to maintenance-time probing.
///
/// # Examples
///
/// ```
/// use ecg_faults::FaultPlan;
/// use ecg_topology::CacheId;
///
/// let plan = FaultPlan::new()
///     .crash(CacheId(2), 10_000.0, 30_000.0) // down 10s in, back 30s later
///     .retire(CacheId(5), 60_000.0)
///     .brownout(90_000.0, 15_000.0, 4.0);
/// assert_eq!(plan.schedule().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    failover_penalty_ms: f64,
    timeline_bucket_ms: f64,
    probe_loss_rate: f64,
    probe_timeout_ms: Option<f64>,
}

impl Default for FaultPlan {
    /// An empty plan: no faults, simulator-default failover penalty and
    /// timeline buckets, healthy probing.
    fn default() -> Self {
        let defaults = FaultSchedule::default();
        FaultPlan {
            events: Vec::new(),
            failover_penalty_ms: defaults.failover_penalty(),
            timeline_bucket_ms: defaults.timeline_bucket(),
            probe_loss_rate: 0.0,
            probe_timeout_ms: None,
        }
    }
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crashes `cache` at `at_ms` and brings it back (cold) after
    /// `down_for_ms`.
    ///
    /// # Panics
    ///
    /// Panics if either time is not finite and non-negative, or
    /// `down_for_ms` is zero.
    pub fn crash(mut self, cache: CacheId, at_ms: f64, down_for_ms: f64) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "crash time must be >= 0");
        assert!(
            down_for_ms.is_finite() && down_for_ms > 0.0,
            "downtime must be > 0"
        );
        self.events.push(FaultEvent {
            time_ms: at_ms,
            kind: FaultKind::CacheDown { cache },
        });
        self.events.push(FaultEvent {
            time_ms: at_ms + down_for_ms,
            kind: FaultKind::CacheUp { cache },
        });
        self
    }

    /// Permanently retires `cache` at `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not finite and non-negative.
    pub fn retire(mut self, cache: CacheId, at_ms: f64) -> Self {
        assert!(
            at_ms.is_finite() && at_ms >= 0.0,
            "retire time must be >= 0"
        );
        self.events.push(FaultEvent {
            time_ms: at_ms,
            kind: FaultKind::CacheRetire { cache },
        });
        self
    }

    /// Slows every origin fetch by `factor` during
    /// `[start_ms, start_ms + duration_ms)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is degenerate or `factor < 1`.
    pub fn brownout(mut self, start_ms: f64, duration_ms: f64, factor: f64) -> Self {
        assert!(
            start_ms.is_finite() && start_ms >= 0.0,
            "brownout start must be >= 0"
        );
        assert!(
            duration_ms.is_finite() && duration_ms > 0.0,
            "brownout duration must be > 0"
        );
        assert!(
            factor.is_finite() && factor >= 1.0,
            "brownout factor must be >= 1"
        );
        self.events.push(FaultEvent {
            time_ms: start_ms,
            kind: FaultKind::BrownoutStart { factor },
        });
        self.events.push(FaultEvent {
            time_ms: start_ms + duration_ms,
            kind: FaultKind::BrownoutEnd,
        });
        self
    }

    /// Sets the client-side failover-detection penalty.
    pub fn failover_penalty_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "penalty must be >= 0");
        self.failover_penalty_ms = ms;
        self
    }

    /// Sets the degradation-timeline bucket width.
    pub fn timeline_bucket_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "bucket width must be > 0");
        self.timeline_bucket_ms = ms;
        self
    }

    /// Degrades maintenance-time probing: each probe is lost with
    /// probability `loss_rate`, and a fully lost measurement reports
    /// `timeout_ms`. Applied by [`FaultPlan::probe_config`].
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1)` or `timeout_ms` is not
    /// positive.
    pub fn probe_loss(mut self, loss_rate: f64, timeout_ms: f64) -> Self {
        assert!(
            loss_rate.is_finite() && (0.0..1.0).contains(&loss_rate),
            "loss rate must be in [0, 1)"
        );
        assert!(
            timeout_ms.is_finite() && timeout_ms > 0.0,
            "timeout must be positive"
        );
        self.probe_loss_rate = loss_rate;
        self.probe_timeout_ms = Some(timeout_ms);
        self
    }

    /// The planned fault events, in build order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Returns `true` if the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compiles the plan into the simulator's [`FaultSchedule`].
    pub fn schedule(&self) -> FaultSchedule {
        let mut schedule = FaultSchedule::new()
            .failover_penalty_ms(self.failover_penalty_ms)
            .timeline_bucket_ms(self.timeline_bucket_ms);
        for e in &self.events {
            schedule.push(e.time_ms, e.kind);
        }
        schedule
    }

    /// Applies the plan's probe-degradation knobs to a base probing
    /// configuration (returns `base` unchanged when no knob was set).
    pub fn probe_config(&self, base: ProbeConfig) -> ProbeConfig {
        let mut cfg = base.loss_rate(self.probe_loss_rate);
        if let Some(timeout) = self.probe_timeout_ms {
            cfg = cfg.timeout_ms(timeout);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_expands_to_down_then_up() {
        let plan = FaultPlan::new().crash(CacheId(1), 100.0, 50.0);
        let events = plan.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time_ms, 100.0);
        assert_eq!(events[0].kind, FaultKind::CacheDown { cache: CacheId(1) });
        assert_eq!(events[1].time_ms, 150.0);
        assert_eq!(events[1].kind, FaultKind::CacheUp { cache: CacheId(1) });
    }

    #[test]
    fn brownout_expands_to_window() {
        let plan = FaultPlan::new().brownout(10.0, 5.0, 2.5);
        let s = plan.schedule();
        assert!(s.validate(0).is_ok());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn schedule_carries_knobs() {
        let plan = FaultPlan::new()
            .failover_penalty_ms(42.0)
            .timeline_bucket_ms(500.0);
        let s = plan.schedule();
        assert_eq!(s.failover_penalty(), 42.0);
        assert_eq!(s.timeline_bucket(), 500.0);
    }

    #[test]
    fn probe_knobs_apply_to_base_config() {
        let plan = FaultPlan::new().probe_loss(0.25, 2_000.0);
        let cfg = plan.probe_config(ProbeConfig::noiseless());
        assert_eq!(cfg.loss(), 0.25);
        assert_eq!(cfg.timeout(), 2_000.0);
        // Without knobs the base passes through untouched.
        let cfg = FaultPlan::new().probe_config(ProbeConfig::default());
        assert_eq!(cfg, ProbeConfig::default());
    }

    #[test]
    fn empty_plan_compiles_to_empty_schedule() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let s = plan.schedule();
        assert!(s.is_empty());
        assert_eq!(s, FaultSchedule::new());
    }

    #[test]
    #[should_panic(expected = "downtime")]
    fn zero_downtime_rejected() {
        let _ = FaultPlan::new().crash(CacheId(0), 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn speedup_brownout_rejected() {
        let _ = FaultPlan::new().brownout(0.0, 10.0, 0.9);
    }
}
