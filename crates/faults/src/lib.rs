//! Fault injection and churn for the edge-cache-group simulator.
//!
//! The paper forms cache groups once, over a healthy network. This crate
//! asks what happens afterwards: caches crash and recover, nodes are
//! retired for good, the origin browns out, probe traffic gets lossy. It
//! layers three pieces over the rest of the workspace:
//!
//! * [`FaultPlan`] — a builder DSL for fault scripts. Compiles to the
//!   simulator's [`ecg_sim::FaultSchedule`] (consumed by
//!   [`ecg_sim::simulate_with_faults`]) and can degrade
//!   maintenance-time probing via [`FaultPlan::probe_config`].
//! * [`ChurnConfig`] / [`ChurnDriver`] — seeded random churn generation
//!   and its replay through [`ecg_core::maintenance`]: crashed caches
//!   are retired from their groups, recovered ones re-admitted, and the
//!   interaction-cost drift of the surviving grouping is tracked as a
//!   time series ([`DriftSample`]).
//! * [`report_to_json`] — a deterministic (byte-stable) JSON emitter for
//!   [`ecg_sim::SimReport`], used by the churn ablation to write result
//!   files without a serde dependency.
//! * [`FormationFaults`] — cache-level faults (crashes, link blackholes,
//!   correlated stub-domain outages) injected into *group formation
//!   itself*, compiled to [`ecg_coords::ProbeFaults`] for the resilient
//!   SL/SDSL pipeline.
//!
//! # Examples
//!
//! Injecting a scripted crash into a simulation:
//!
//! ```
//! use ecg_faults::FaultPlan;
//! use ecg_sim::{simulate_with_faults, GroupMap, SimConfig};
//! use ecg_topology::{fixtures::paper_figure1, CacheId, EdgeNetwork};
//! use ecg_workload::{merge_streams, CatalogConfig, RequestConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
//! let mut rng = StdRng::seed_from_u64(7);
//! let catalog = CatalogConfig::default().documents(100).generate(&mut rng);
//! let requests = RequestConfig::default().generate(&catalog, 6, 20_000.0, &mut rng);
//! let trace = merge_streams(&requests, &[]);
//!
//! let plan = FaultPlan::new().crash(CacheId(0), 5_000.0, 10_000.0);
//! let report = simulate_with_faults(
//!     &network,
//!     &GroupMap::one_group(6),
//!     &catalog,
//!     &trace,
//!     SimConfig::default(),
//!     &plan.schedule(),
//! )?;
//! assert!(report.metrics.degradation.saw_faults());
//! # Ok::<(), ecg_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod churn;
pub mod formation;
pub mod json;
mod jsonparse;
pub mod plan;

pub use churn::{ChurnConfig, ChurnDriver, DriftSample, MembershipPressure};
pub use formation::FormationFaults;
pub use json::report_to_json;
pub use plan::{FaultPlan, PlanParseError};
