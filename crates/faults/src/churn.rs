//! Random churn generation and the maintenance-side churn driver.
//!
//! [`ChurnConfig`] turns a churn *rate* into a concrete, seeded
//! [`FaultPlan`] (who crashes when, for how long, who never comes back).
//! [`ChurnDriver`] replays such a plan against the group-maintenance
//! layer — retiring crashed caches from their groups, re-admitting
//! recovered ones — and records how the average interaction cost drifts
//! away from its formation-time baseline as membership churns.

use ecg_core::maintenance::{GroupMaintainer, MaintenanceError};
use ecg_obs::Obs;
use ecg_sim::fault::FaultKind;
use ecg_sim::GroupMap;
use ecg_topology::{CacheId, EdgeNetwork};
use rand::Rng;

use crate::plan::FaultPlan;

/// Parameters for random churn generation.
///
/// # Examples
///
/// ```
/// use ecg_faults::ChurnConfig;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let plan = ChurnConfig::default()
///     .crashes_per_hour_per_cache(12.0)
///     .generate(8, 600_000.0, &mut rng);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    crashes_per_hour_per_cache: f64,
    mean_downtime_ms: f64,
    retirement_fraction: f64,
}

impl Default for ChurnConfig {
    /// One crash per cache per hour, one-minute mean downtime, every
    /// crashed cache eventually recovers.
    fn default() -> Self {
        ChurnConfig {
            crashes_per_hour_per_cache: 1.0,
            mean_downtime_ms: 60_000.0,
            retirement_fraction: 0.0,
        }
    }
}

impl ChurnConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the expected crash rate, per cache, per simulated hour.
    /// Zero disables churn.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and non-negative.
    pub fn crashes_per_hour_per_cache(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        self.crashes_per_hour_per_cache = rate;
        self
    }

    /// Sets the mean outage duration (exponentially distributed).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not finite and positive.
    pub fn mean_downtime_ms(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "mean downtime must be > 0");
        self.mean_downtime_ms = ms;
        self
    }

    /// Sets the fraction of crashes that are permanent retirements
    /// (the node is written off instead of recovering).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn retirement_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.retirement_fraction = fraction;
        self
    }

    /// The configured crash rate (per cache, per hour).
    pub fn rate(&self) -> f64 {
        self.crashes_per_hour_per_cache
    }

    /// Samples a concrete [`FaultPlan`] for `caches` caches over
    /// `duration_ms` of simulated time.
    ///
    /// Crashes arrive as a Poisson process over the whole population
    /// (exponential inter-arrival times at `rate × caches` per hour);
    /// each picks a uniformly random victim, skipping caches that are
    /// already down or retired. A victim is retired permanently with
    /// probability [`retirement_fraction`](Self::retirement_fraction) —
    /// except the last survivor, which is always allowed to recover so
    /// the population can never churn to zero. Same seed, same plan.
    ///
    /// # Panics
    ///
    /// Panics if `caches` is zero or `duration_ms` is not positive.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        caches: usize,
        duration_ms: f64,
        rng: &mut R,
    ) -> FaultPlan {
        assert!(caches > 0, "need at least one cache");
        assert!(
            duration_ms.is_finite() && duration_ms > 0.0,
            "duration must be > 0"
        );
        let mut plan = FaultPlan::new();
        if self.crashes_per_hour_per_cache == 0.0 {
            return plan;
        }
        let mean_gap_ms = 3_600_000.0 / (self.crashes_per_hour_per_cache * caches as f64);
        let mut busy_until = vec![0.0f64; caches]; // f64::INFINITY once retired
        let mut now = 0.0;
        loop {
            now += exponential(mean_gap_ms, rng);
            if now >= duration_ms {
                return plan;
            }
            let victim = CacheId(rng.gen_range(0..caches));
            if busy_until[victim.index()] > now {
                continue; // already down (or retired) — the crash is moot
            }
            let alive = busy_until.iter().filter(|&&t| t <= now).count();
            let retire = self.retirement_fraction > 0.0
                && alive > 1
                && rng.gen_bool(self.retirement_fraction);
            if retire {
                busy_until[victim.index()] = f64::INFINITY;
                plan = plan.retire(victim, now);
            } else {
                let downtime = exponential(self.mean_downtime_ms, rng).max(1.0);
                busy_until[victim.index()] = now + downtime;
                plan = plan.crash(victim, now, downtime);
            }
        }
    }
}

/// Draws from Exp(mean) by inversion.
fn exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen(); // [0, 1), so 1 - u is in (0, 1] and ln is finite
    -mean * (1.0 - u).ln()
}

/// One point of the interaction-cost drift series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSample {
    /// Simulated time of the membership change that produced this
    /// sample.
    pub time_ms: f64,
    /// Interaction-cost drift ratio after the change (`1.0` = at the
    /// formation baseline).
    pub drift: f64,
}

/// Membership pressure accumulated by a [`ChurnDriver`] — the
/// churn-side analogue of [`ecg_core::FormationHealth`], consumed by
/// re-formation policies deciding whether incremental maintenance is
/// still good enough.
///
/// The load-bearing signal is [`skipped_retirements`]: a retirement was
/// *refused* because it would have dissolved a group, so the membership
/// the maintainer serves has drifted from what the fault plan says is
/// actually alive. A policy seeing this should re-form rather than keep
/// repairing.
///
/// [`skipped_retirements`]: MembershipPressure::skipped_retirements
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MembershipPressure {
    /// Membership removals applied (crashes + permanent retirements).
    pub retirements: u64,
    /// Recoveries re-admitted into a group.
    pub readmissions: u64,
    /// Retirements refused because they would have emptied a group; the
    /// affected caches are still nominally grouped while actually down.
    pub skipped_retirements: u64,
}

impl MembershipPressure {
    /// True when churn has forced the driver off the happy path —
    /// currently, when any retirement had to be skipped. Mirrors
    /// [`ecg_core::FormationHealth::is_degraded`].
    pub fn is_elevated(&self) -> bool {
        self.skipped_retirements > 0
    }
}

impl std::fmt::Display for MembershipPressure {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            out,
            "{} retired, {} readmitted, {} retirements skipped",
            self.retirements, self.readmissions, self.skipped_retirements
        )
    }
}

/// Replays a [`FaultPlan`]'s membership changes through group
/// maintenance.
///
/// Crashes and retirements call [`GroupMaintainer::retire`]; recoveries
/// call [`GroupMaintainer::readmit`]. After every applied change the
/// driver samples [`GroupMaintainer::drift`], yielding a time series of
/// how far churn has pushed the grouping from its formation-time
/// interaction cost.
#[derive(Debug, Clone)]
pub struct ChurnDriver {
    maintainer: GroupMaintainer,
    drift_series: Vec<DriftSample>,
    readmissions: u64,
    retirements: u64,
    skipped_retirements: u64,
}

impl ChurnDriver {
    /// Wraps a maintainer for churn replay.
    pub fn new(maintainer: GroupMaintainer) -> Self {
        ChurnDriver {
            maintainer,
            drift_series: Vec::new(),
            readmissions: 0,
            retirements: 0,
            skipped_retirements: 0,
        }
    }

    /// Applies every membership-affecting event of `plan` in time order.
    ///
    /// A retirement that would empty its group is skipped (counted in
    /// [`skipped_retirements`](Self::skipped_retirements)) — the cache
    /// stays nominally grouped, mirroring a deployment that refuses to
    /// dissolve a group implicitly. Brownouts don't touch membership and
    /// are ignored.
    ///
    /// # Errors
    ///
    /// Propagates [`MaintenanceError`] on structural mismatches (unknown
    /// cache ids, network/maintainer size disagreement); never errors on
    /// the expected churn races handled above.
    pub fn apply<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        plan: &FaultPlan,
        rng: &mut R,
    ) -> Result<(), MaintenanceError> {
        self.apply_observed(network, plan, rng, None)
    }

    /// Like [`ChurnDriver::apply`], but records churn telemetry into an
    /// observability bundle when one is supplied: `churn.retirements` /
    /// `churn.readmissions` / `churn.skipped_retirements` counters, a
    /// `churn.max_drift` high-water gauge, `churn` trace events keyed by
    /// the fault's simulated time (with the post-change drift ratio),
    /// plus the underlying `maintenance.*` and `probe.*` streams from
    /// the maintainer. With `obs = None` this is exactly
    /// [`ChurnDriver::apply`]; instrumentation never draws from the RNG.
    ///
    /// # Errors
    ///
    /// Exactly as [`ChurnDriver::apply`].
    pub fn apply_observed<R: Rng + ?Sized>(
        &mut self,
        network: &EdgeNetwork,
        plan: &FaultPlan,
        rng: &mut R,
        mut obs: Option<&mut Obs>,
    ) -> Result<(), MaintenanceError> {
        let mut events: Vec<_> = plan.events().to_vec();
        events.sort_by(|a, b| {
            a.time_ms
                .partial_cmp(&b.time_ms)
                .expect("times are not NaN")
        });
        for event in &events {
            let applied = match event.kind {
                FaultKind::CacheDown { cache } | FaultKind::CacheRetire { cache } => {
                    match self.maintainer.retire_observed(cache, obs.as_deref_mut()) {
                        Ok(_) => true,
                        Err(MaintenanceError::WouldEmptyGroup { .. }) => {
                            self.skipped_retirements += 1;
                            if let Some(o) = obs.as_deref_mut() {
                                o.metrics.inc("churn.skipped_retirements");
                                o.trace.push(
                                    event.time_ms,
                                    "churn",
                                    "skipped_retire",
                                    vec![("cache", cache.index().into())],
                                );
                            }
                            false
                        }
                        // Already out (e.g. crash of a retired cache).
                        Err(MaintenanceError::UnknownCache(_)) => false,
                        Err(e) => return Err(e),
                    }
                }
                FaultKind::CacheUp { cache } => {
                    match self
                        .maintainer
                        .readmit_observed(network, cache, rng, obs.as_deref_mut())
                    {
                        Ok(_) => true,
                        // Its retirement was skipped, so it never left.
                        Err(MaintenanceError::AlreadyActive(_)) => false,
                        Err(e) => return Err(e),
                    }
                }
                FaultKind::BrownoutStart { .. } | FaultKind::BrownoutEnd => false,
            };
            if applied {
                let kind = if let FaultKind::CacheUp { .. } = event.kind {
                    self.readmissions += 1;
                    "readmit"
                } else {
                    self.retirements += 1;
                    "retire"
                };
                let drift = self.maintainer.drift(network)?;
                self.drift_series.push(DriftSample {
                    time_ms: event.time_ms,
                    drift,
                });
                if let Some(o) = obs.as_deref_mut() {
                    o.metrics.inc(if kind == "readmit" {
                        "churn.readmissions"
                    } else {
                        "churn.retirements"
                    });
                    o.metrics.max_gauge("churn.max_drift", drift);
                    o.trace
                        .push(event.time_ms, "churn", kind, vec![("drift", drift.into())]);
                }
            }
        }
        Ok(())
    }

    /// Drift samples recorded so far, in event order.
    pub fn drift_series(&self) -> &[DriftSample] {
        &self.drift_series
    }

    /// The worst drift ratio seen (or `1.0` before any change).
    pub fn max_drift(&self) -> f64 {
        self.drift_series
            .iter()
            .map(|s| s.drift)
            .fold(1.0, f64::max)
    }

    /// Membership removals applied (crashes + permanent retirements).
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// Recoveries re-admitted into a group.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }

    /// Retirements skipped because they would have emptied a group.
    pub fn skipped_retirements(&self) -> u64 {
        self.skipped_retirements
    }

    /// The accumulated [`MembershipPressure`], for re-formation
    /// policies.
    pub fn pressure(&self) -> MembershipPressure {
        MembershipPressure {
            retirements: self.retirements,
            readmissions: self.readmissions,
            skipped_retirements: self.skipped_retirements,
        }
    }

    /// The maintained grouping state.
    pub fn maintainer(&self) -> &GroupMaintainer {
        &self.maintainer
    }

    /// Unwraps the driver, returning the maintained state.
    pub fn into_maintainer(self) -> GroupMaintainer {
        self.maintainer
    }

    /// The current membership as a simulator [`GroupMap`].
    ///
    /// Caches with no group (currently down or retired) become
    /// singletons, so the map always covers the full id space the
    /// simulator expects.
    pub fn group_map(&self) -> GroupMap {
        let mut groups: Vec<Vec<CacheId>> = self
            .maintainer
            .groups()
            .iter()
            .filter(|g| !g.is_empty())
            .cloned()
            .collect();
        for idx in 0..self.maintainer.cache_count() {
            let cache = CacheId(idx);
            if self.maintainer.group_of(cache).is_none() {
                groups.push(vec![cache]);
            }
        }
        GroupMap::new(self.maintainer.cache_count(), groups)
            .expect("maintainer state is a valid partition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_coords::ProbeConfig;
    use ecg_core::{GfCoordinator, SchemeConfig};
    use ecg_topology::fixtures::paper_figure1;
    use rand::{rngs::StdRng, SeedableRng};

    /// Paper Figure 1 network formed into its three natural pairs
    /// (seed-searched for determinism, like the maintenance tests).
    fn network_and_maintainer() -> (EdgeNetwork, GroupMaintainer) {
        let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = GfCoordinator::new(
                SchemeConfig::sl(3)
                    .landmarks(3)
                    .plset_multiplier(2)
                    .probe(ProbeConfig::noiseless()),
            )
            .form_groups(&network, &mut rng)
            .expect("formation succeeds");
            let mut groups: Vec<Vec<usize>> = outcome
                .groups()
                .iter()
                .map(|g| g.iter().map(|c| c.index()).collect())
                .collect();
            groups.sort();
            if groups == vec![vec![0, 1], vec![2, 3], vec![4, 5]] {
                let m = GroupMaintainer::new(&network, outcome, ProbeConfig::noiseless());
                return (network, m);
            }
        }
        panic!("no seed produced the natural pairs");
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let cfg = ChurnConfig::default()
            .crashes_per_hour_per_cache(30.0)
            .retirement_fraction(0.2);
        let a = cfg.generate(10, 600_000.0, &mut StdRng::seed_from_u64(9));
        let b = cfg.generate(10, 600_000.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = cfg.generate(10, 600_000.0, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_rate_generates_empty_plan() {
        let plan = ChurnConfig::default()
            .crashes_per_hour_per_cache(0.0)
            .generate(10, 600_000.0, &mut StdRng::seed_from_u64(1));
        assert!(plan.is_empty());
    }

    #[test]
    fn generated_plan_validates_and_stays_in_window() {
        let cfg = ChurnConfig::default()
            .crashes_per_hour_per_cache(60.0)
            .mean_downtime_ms(20_000.0)
            .retirement_fraction(0.3);
        let plan = cfg.generate(8, 300_000.0, &mut StdRng::seed_from_u64(3));
        assert!(!plan.is_empty());
        assert!(plan.schedule().validate(8).is_ok());
        for e in plan.events() {
            match e.kind {
                // Recoveries may land past the horizon; crashes and
                // retirements never do.
                FaultKind::CacheDown { .. } | FaultKind::CacheRetire { .. } => {
                    assert!(e.time_ms < 300_000.0)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn retirements_never_exhaust_the_population() {
        let cfg = ChurnConfig::default()
            .crashes_per_hour_per_cache(500.0)
            .retirement_fraction(1.0);
        let plan = cfg.generate(4, 3_600_000.0, &mut StdRng::seed_from_u64(5));
        let retired = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CacheRetire { .. }))
            .count();
        assert_eq!(retired, 3, "last survivor must never be retired");
    }

    #[test]
    fn driver_tracks_drift_through_crash_and_recovery() {
        let (network, maintainer) = network_and_maintainer();
        let active = maintainer.active_caches();
        let victim = CacheId(0);
        let plan = FaultPlan::new().crash(victim, 10_000.0, 50_000.0);
        let mut driver = ChurnDriver::new(maintainer);
        let mut rng = StdRng::seed_from_u64(2);
        driver
            .apply(&network, &plan, &mut rng)
            .expect("apply succeeds");
        assert_eq!(driver.retirements(), 1);
        assert_eq!(driver.readmissions(), 1);
        assert_eq!(driver.drift_series().len(), 2);
        // Fully recovered: membership is back to full strength and the
        // final drift sample is back at the formation baseline.
        assert_eq!(driver.maintainer().active_caches(), active);
        let last = driver.drift_series().last().unwrap();
        assert!((last.drift - 1.0).abs() < 1e-9);
        assert!(driver.max_drift() >= 1.0);
    }

    #[test]
    fn driver_skips_retirement_that_would_empty_group() {
        let (network, maintainer) = network_and_maintainer();
        // Retire every cache in group 0 — the last one must be skipped.
        let members = maintainer.groups()[0].clone();
        assert!(members.len() >= 2);
        let mut plan = FaultPlan::new();
        for (i, &c) in members.iter().enumerate() {
            plan = plan.retire(c, 1_000.0 * (i + 1) as f64);
        }
        let mut driver = ChurnDriver::new(maintainer);
        driver
            .apply(&network, &plan, &mut StdRng::seed_from_u64(4))
            .expect("apply succeeds");
        assert_eq!(driver.retirements(), members.len() as u64 - 1);
        assert_eq!(driver.skipped_retirements(), 1);
        assert_eq!(driver.maintainer().groups()[0].len(), 1);
        // The skip surfaces as elevated membership pressure, so a
        // re-formation policy can see that served membership has
        // diverged from ground truth.
        let pressure = driver.pressure();
        assert!(pressure.is_elevated());
        assert_eq!(
            pressure,
            MembershipPressure {
                retirements: members.len() as u64 - 1,
                readmissions: 0,
                skipped_retirements: 1,
            }
        );
        assert!(pressure.to_string().contains("1 retirements skipped"));
    }

    #[test]
    fn pressure_stays_flat_without_skips() {
        let (network, maintainer) = network_and_maintainer();
        let plan = FaultPlan::new().crash(CacheId(0), 1_000.0, 2_000.0);
        let mut driver = ChurnDriver::new(maintainer);
        driver
            .apply(&network, &plan, &mut StdRng::seed_from_u64(8))
            .expect("apply succeeds");
        let pressure = driver.pressure();
        assert!(!pressure.is_elevated());
        assert_eq!(pressure.retirements, 1);
        assert_eq!(pressure.readmissions, 1);
        assert_eq!(pressure.skipped_retirements, 0);
    }

    #[test]
    fn observed_apply_matches_plain_and_records_churn() {
        let (network, maintainer) = network_and_maintainer();
        let cfg = ChurnConfig::default()
            .crashes_per_hour_per_cache(240.0)
            .mean_downtime_ms(30_000.0);
        let plan = cfg.generate(6, 600_000.0, &mut StdRng::seed_from_u64(12));

        let mut plain = ChurnDriver::new(maintainer.clone());
        plain
            .apply(&network, &plan, &mut StdRng::seed_from_u64(13))
            .expect("apply succeeds");

        let mut obs = Obs::new();
        let mut observed = ChurnDriver::new(maintainer);
        observed
            .apply_observed(
                &network,
                &plan,
                &mut StdRng::seed_from_u64(13),
                Some(&mut obs),
            )
            .expect("apply succeeds");

        // Instrumentation must not perturb the churn replay.
        assert_eq!(plain.drift_series(), observed.drift_series());
        assert_eq!(plain.maintainer(), observed.maintainer());

        assert_eq!(
            obs.metrics.counter("churn.retirements"),
            observed.retirements()
        );
        assert_eq!(
            obs.metrics.counter("churn.readmissions"),
            observed.readmissions()
        );
        assert_eq!(
            obs.metrics.counter("churn.skipped_retirements"),
            observed.skipped_retirements()
        );
        // Churn counters layer over the maintainer's own stream.
        assert_eq!(
            obs.metrics.counter("maintenance.retirements"),
            observed.retirements()
        );
        assert_eq!(
            obs.metrics.counter("maintenance.readmissions"),
            observed.readmissions()
        );
        let series_max = observed
            .drift_series()
            .iter()
            .map(|s| s.drift)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(obs.metrics.gauge("churn.max_drift"), Some(series_max));
        assert!(observed.retirements() > 0, "plan produced no churn");

        // Every drift sample has a matching churn trace event at the
        // fault's simulated time.
        let churn_times: Vec<f64> = obs
            .trace
            .events()
            .filter(|e| e.component == "churn" && e.kind != "skipped_retire")
            .map(|e| e.t)
            .collect();
        let sample_times: Vec<f64> = observed.drift_series().iter().map(|s| s.time_ms).collect();
        assert_eq!(churn_times, sample_times);
    }

    #[test]
    fn group_map_covers_full_id_space_with_singletons() {
        let (network, maintainer) = network_and_maintainer();
        let n = maintainer.cache_count();
        let victim = maintainer.groups()[1][0];
        let plan = FaultPlan::new().retire(victim, 5_000.0);
        let mut driver = ChurnDriver::new(maintainer);
        driver
            .apply(&network, &plan, &mut StdRng::seed_from_u64(6))
            .expect("apply succeeds");
        let map = driver.group_map();
        assert_eq!(map.cache_count(), n);
        let g = map.group_of(victim);
        assert_eq!(
            map.groups()[g],
            vec![victim],
            "retired cache is a singleton"
        );
        assert!(map.peers(victim).is_empty());
    }
}
