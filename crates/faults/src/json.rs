//! Deterministic JSON serialization of simulation reports.
//!
//! The workspace has no serde, so this is a tiny hand-rolled emitter:
//! fixed key order, `{}`-formatted numbers (shortest round-trip for
//! floats), no whitespace variability. Two equal [`SimReport`]s always
//! serialize to byte-identical strings, which is what the determinism
//! tests and the ablation result files rely on.

use std::fmt::Write as _;

use ecg_sim::{DegradationMetrics, SimReport, WindowAggregate};

/// Serializes `report` to a deterministic single-line JSON object.
///
/// # Examples
///
/// ```
/// use ecg_faults::report_to_json;
/// use ecg_sim::{simulate, GroupMap, SimConfig};
/// use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
/// use ecg_workload::{merge_streams, CatalogConfig, RequestConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
/// let mut rng = StdRng::seed_from_u64(1);
/// let catalog = CatalogConfig::default().documents(50).generate(&mut rng);
/// let requests = RequestConfig::default().generate(&catalog, 6, 5_000.0, &mut rng);
/// let trace = merge_streams(&requests, &[]);
/// let report = simulate(
///     &network,
///     &GroupMap::one_group(6),
///     &catalog,
///     &trace,
///     SimConfig::default(),
/// )?;
/// let json = report_to_json(&report);
/// assert!(json.starts_with("{\"requests\":"));
/// # Ok::<(), ecg_sim::SimError>(())
/// ```
pub fn report_to_json(report: &SimReport) -> String {
    let m = &report.metrics;
    let mut out = String::with_capacity(1024);
    out.push('{');
    push_u64(&mut out, "requests", m.total_requests());
    push_f64(&mut out, "avg_latency_ms", report.average_latency_ms());
    push_opt_f64(&mut out, "p50_latency_ms", m.latency_percentile_ms(0.5));
    push_opt_f64(&mut out, "p95_latency_ms", m.latency_percentile_ms(0.95));
    push_opt_f64(&mut out, "p99_latency_ms", m.latency_percentile_ms(0.99));
    push_opt_f64(&mut out, "group_hit_rate", m.group_hit_rate());
    push_u64(&mut out, "origin_fetches", report.origin_fetches);
    push_u64(&mut out, "origin_updates", report.origin_updates);
    push_u64(&mut out, "peer_bytes", m.peer_bytes);
    push_u64(&mut out, "origin_bytes", m.origin_bytes);
    push_u64(&mut out, "control_messages", m.control_messages);
    push_u64(&mut out, "invalidations_sent", m.invalidations_sent);
    push_u64(&mut out, "stale_served", m.stale_served);

    let s = &report.cache_stats;
    push_raw(
        &mut out,
        "cache_stats",
        &format!(
            "{{\"lookups\":{},\"fresh_hits\":{},\"stale_hits\":{},\"misses\":{},\
             \"insertions\":{},\"evictions\":{},\"bytes_evicted\":{}}}",
            s.lookups,
            s.fresh_hits,
            s.stale_hits,
            s.misses,
            s.insertions,
            s.evictions,
            s.bytes_evicted
        ),
    );

    push_raw(&mut out, "degradation", &degradation_json(&m.degradation));

    let per_cache: Vec<String> = m
        .per_cache()
        .iter()
        .map(|a| {
            format!(
                "{{\"requests\":{},\"mean_latency_ms\":{},\"latency_max_ms\":{},\
                 \"local_hits\":{},\"peer_hits\":{},\"origin_fetches\":{}}}",
                a.requests,
                f(a.mean_latency_ms().unwrap_or(0.0)),
                f(a.latency_max_ms),
                a.local_hits,
                a.peer_hits,
                a.origin_fetches
            )
        })
        .collect();
    push_raw(&mut out, "per_cache", &format!("[{}]", per_cache.join(",")));

    // Strip the trailing comma the pushers leave behind.
    out.pop();
    out.push('}');
    out
}

fn degradation_json(d: &DegradationMetrics) -> String {
    let timeline: Vec<String> = d
        .timeline()
        .iter()
        .map(|b| {
            format!(
                "{{\"start_ms\":{},\"healthy\":{},\"degraded\":{}}}",
                f(b.start_ms),
                window_json(&b.healthy),
                window_json(&b.degraded)
            )
        })
        .collect();
    let mut out = String::with_capacity(256);
    out.push('{');
    push_raw(&mut out, "healthy", &window_json(&d.healthy));
    push_raw(&mut out, "degraded", &window_json(&d.degraded));
    push_u64(&mut out, "failovers", d.failovers);
    push_u64(&mut out, "peer_queries_skipped", d.peer_queries_skipped);
    push_u64(&mut out, "crashes", d.crashes);
    push_u64(&mut out, "recoveries", d.recoveries);
    push_u64(&mut out, "retirements", d.retirements);
    push_opt_f64(&mut out, "degraded_fraction", d.degraded_fraction());
    push_opt_f64(
        &mut out,
        "degradation_penalty_ms",
        d.degradation_penalty_ms(),
    );
    push_f64(&mut out, "bucket_width_ms", d.bucket_width_ms());
    push_raw(&mut out, "timeline", &format!("[{}]", timeline.join(",")));
    out.pop();
    out.push('}');
    out
}

fn window_json(w: &WindowAggregate) -> String {
    format!(
        "{{\"requests\":{},\"mean_latency_ms\":{},\"latency_max_ms\":{},\
         \"group_hits\":{},\"stale_served\":{}}}",
        w.requests,
        f(w.mean_latency_ms().unwrap_or(0.0)),
        f(w.latency_max_ms),
        w.group_hits,
        w.stale_served
    )
}

/// Formats a float as a JSON number (JSON has no NaN/Infinity; they
/// become null, which the emitters above never actually produce).
/// Shared with the plan serializer in [`crate::plan`].
pub(crate) fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, "\"{key}\":{v},");
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, "\"{key}\":{},", f(v));
}

fn push_opt_f64(out: &mut String, key: &str, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, key, v),
        None => {
            let _ = write!(out, "\"{key}\":null,");
        }
    }
}

fn push_raw(out: &mut String, key: &str, v: &str) {
    let _ = write!(out, "\"{key}\":{v},");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_sim::{simulate, GroupMap, SimConfig};
    use ecg_topology::{fixtures::paper_figure1, EdgeNetwork};
    use ecg_workload::{merge_streams, CatalogConfig, RequestConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn sample_report() -> SimReport {
        let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
        let mut rng = StdRng::seed_from_u64(5);
        let catalog = CatalogConfig::default().documents(80).generate(&mut rng);
        let requests = RequestConfig::default().generate(&catalog, 6, 10_000.0, &mut rng);
        let trace = merge_streams(&requests, &[]);
        simulate(
            &network,
            &GroupMap::one_group(6),
            &catalog,
            &trace,
            SimConfig::default(),
        )
        .expect("simulation succeeds")
    }

    #[test]
    fn serialization_is_deterministic() {
        let report = sample_report();
        assert_eq!(report_to_json(&report), report_to_json(&report.clone()));
    }

    #[test]
    fn json_is_well_formed_and_carries_headline_numbers() {
        let report = sample_report();
        let json = report_to_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(
            !json.contains(",}") && !json.contains(",]"),
            "no dangling commas"
        );
        assert!(json.contains(&format!("\"requests\":{}", report.metrics.total_requests())));
        assert!(json.contains(&format!("\"origin_fetches\":{}", report.origin_fetches)));
        assert!(json.contains("\"degradation\":{\"healthy\":"));
        assert!(json.contains("\"per_cache\":["));
    }

    #[test]
    fn fault_free_report_has_zero_degradation_counters() {
        let report = sample_report();
        let json = report_to_json(&report);
        assert!(json.contains("\"failovers\":0"));
        assert!(json.contains("\"crashes\":0"));
        assert!(json.contains("\"degraded_fraction\":0"));
    }
}
