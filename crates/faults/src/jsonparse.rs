//! Minimal JSON reader for the crate's hand-rolled serializers.
//!
//! The workspace has no serde, and the emitters in [`crate::json`] and
//! [`crate::plan`] write a deliberately tiny JSON subset (objects,
//! arrays, numbers, strings without exotic escapes, `true`/`false`/
//! `null`). This recursive-descent parser reads that subset back so
//! round-trip tests and file-based plan loading don't need an external
//! dependency. It is `pub(crate)`: callers outside the crate go through
//! typed entry points like [`crate::FaultPlan::from_json`].

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always read as `f64`).
    Num(f64),
    /// A string (escapes `\" \\ \/ \n \t \r` supported).
    Str(String),
    /// An array of values.
    Arr(Vec<JsonValue>),
    /// An object, keeping key order as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (first match; `None` for non-objects).
    pub(crate) fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub(crate) fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is JSON `null`.
    pub(crate) fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// anything else after the value is an error).
pub(crate) fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number bytes at {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => {
                            return Err(format!(
                                "unsupported escape '\\{}' at byte {}",
                                char::from(esc),
                                self.pos
                            ))
                        }
                    });
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitter_subset() {
        let v = parse(r#"{"a":1.5,"b":[null,true,"x\ny"],"c":{"d":-2e3}}"#).expect("parses");
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.5));
        let arr = v.get("b").and_then(JsonValue::as_arr).expect("array");
        assert!(arr[0].is_null());
        assert_eq!(arr[1], JsonValue::Bool(true));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        let d = v
            .get("c")
            .and_then(|c| c.get("d"))
            .and_then(JsonValue::as_f64);
        assert_eq!(d, Some(-2000.0));
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        // The emitters write `format!("{v}")`; parsing must recover the
        // exact bits.
        for v in [0.1, 3.0, 10_000.0, 1.0 / 3.0, f64::MAX, 5e-324] {
            let text = format!("{v}");
            let parsed = parse(&text).expect("number parses");
            assert_eq!(parsed.as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{}  ").is_ok());
    }
}
