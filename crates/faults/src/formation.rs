//! Formation-time fault injection: the bridge between fault scripts and
//! the probing layer.
//!
//! The rest of this crate injects faults into a *running* simulation;
//! this module injects them into **group formation itself**. A
//! [`FormationFaults`] value describes which caches are crashed, which
//! probe links are black-holed, and which stub domains are collectively
//! offline while the SL/SDSL pipeline probes the network — it compiles
//! to the node-index [`ecg_coords::ProbeFaults`] consumed by
//! [`ecg_coords::Prober`] and, from there, by
//! [`ecg_core::GfCoordinator::form_groups_faulted`].
//!
//! Fault vocabulary:
//!
//! * **cache crash** ([`FormationFaults::crash`]) — every probe to the
//!   cache dies; the resilient pipeline detects it as dead, fails it
//!   over out of the landmark set, and quarantines it.
//! * **link blackhole** ([`FormationFaults::blackhole`] /
//!   [`FormationFaults::blackhole_to_origin`]) — one probe path dies
//!   while both endpoints stay otherwise reachable; masked clustering
//!   absorbs the missing feature cell.
//! * **correlated stub-domain outage**
//!   ([`FormationFaults::stub_domain_outage`]) — every cache placed in
//!   one GT-ITM stub domain crashes together, the access-network
//!   failure mode transit-stub topologies model.
//!
//! [`FormationFaults::from_schedule`] derives the crash set from a
//! simulator [`FaultSchedule`] at a point in time, so a mid-simulation
//! re-formation can face exactly the faults the simulation has already
//! inflicted.

use ecg_coords::ProbeFaults;
use ecg_sim::fault::FaultSchedule;
use ecg_topology::{CacheId, EdgeNetwork, TransitStubTopology};
use std::collections::BTreeSet;

/// Cache-level fault set for one formation run.
///
/// Indices are cache ids; [`FormationFaults::to_probe_faults`] shifts
/// them into the prober's node space (node `0` is the origin, cache `i`
/// is node `i + 1`).
///
/// # Examples
///
/// ```
/// use ecg_faults::FormationFaults;
/// use ecg_topology::CacheId;
///
/// let faults = FormationFaults::new()
///     .crash(CacheId(7))
///     .blackhole(CacheId(1), CacheId(2))
///     .blackhole_to_origin(CacheId(0));
/// let probe = faults.to_probe_faults();
/// assert!(probe.is_node_down(8)); // cache 7 = node 8
/// assert!(probe.link_dead(2, 3)); // caches 1,2 = nodes 2,3
/// assert!(probe.link_dead(1, 0)); // cache 0 = node 1, origin = 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FormationFaults {
    crashed: BTreeSet<usize>,
    blackholes: BTreeSet<(usize, usize)>,
    origin_blackholes: BTreeSet<usize>,
}

impl FormationFaults {
    /// Creates an empty (fault-free) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crashes `cache`: every probe to it dies.
    pub fn crash(mut self, cache: CacheId) -> Self {
        self.crashed.insert(cache.index());
        self
    }

    /// Black-holes the probe path between two caches; both stay
    /// reachable over their other links.
    pub fn blackhole(mut self, a: CacheId, b: CacheId) -> Self {
        let (a, b) = (a.index().min(b.index()), a.index().max(b.index()));
        self.blackholes.insert((a, b));
        self
    }

    /// Black-holes the probe path between `cache` and the origin
    /// server — the cache loses its server-distance measurement but
    /// still sees the other landmarks.
    pub fn blackhole_to_origin(mut self, cache: CacheId) -> Self {
        self.origin_blackholes.insert(cache.index());
        self
    }

    /// Crashes every cache of stub domain `domain` (by global stub
    /// index) together — a correlated access-network outage. Caches are
    /// matched by their placement node; a domain hosting no caches
    /// leaves the set unchanged.
    pub fn stub_domain_outage(
        mut self,
        topology: &TransitStubTopology,
        network: &EdgeNetwork,
        domain: usize,
    ) -> Self {
        let Some(dom) = topology.stub_domains().get(domain) else {
            return self;
        };
        for (i, node) in network.cache_nodes().iter().enumerate() {
            if dom.nodes.contains(node) {
                self.crashed.insert(i);
            }
        }
        self
    }

    /// Crashes every cache that a simulator fault script has down
    /// (crashed or retired) at `time_ms` — see
    /// [`FaultSchedule::down_caches_at`].
    pub fn from_schedule(schedule: &FaultSchedule, time_ms: f64) -> Self {
        let mut faults = FormationFaults::new();
        for cache in schedule.down_caches_at(time_ms) {
            faults.crashed.insert(cache.index());
        }
        faults
    }

    /// The crashed caches, ascending.
    pub fn crashed_caches(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.crashed.iter().map(|&i| CacheId(i))
    }

    /// Number of crashed caches.
    pub fn crash_count(&self) -> usize {
        self.crashed.len()
    }

    /// `true` when no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.crashed.is_empty() && self.blackholes.is_empty() && self.origin_blackholes.is_empty()
    }

    /// Compiles to the prober's node-index fault set: cache `i` becomes
    /// node `i + 1`, the origin is node `0`.
    pub fn to_probe_faults(&self) -> ProbeFaults {
        let mut probe = ProbeFaults::new();
        for &c in &self.crashed {
            probe = probe.node_down(c + 1);
        }
        for &(a, b) in &self.blackholes {
            probe = probe.blackhole(a + 1, b + 1);
        }
        for &c in &self.origin_blackholes {
            probe = probe.blackhole(c + 1, 0);
        }
        probe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_sim::fault::FaultKind;
    use ecg_topology::{OriginPlacement, TransitStubConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_set_compiles_to_empty_probe_faults() {
        let faults = FormationFaults::new();
        assert!(faults.is_empty());
        assert!(faults.to_probe_faults().is_empty());
    }

    #[test]
    fn cache_indices_shift_into_node_space() {
        let faults = FormationFaults::new()
            .crash(CacheId(0))
            .blackhole(CacheId(4), CacheId(2))
            .blackhole_to_origin(CacheId(9));
        let probe = faults.to_probe_faults();
        assert!(probe.is_node_down(1));
        assert!(!probe.is_node_down(0), "origin is never crashed");
        assert!(probe.link_dead(3, 5));
        assert!(probe.link_dead(5, 3));
        assert!(probe.link_dead(0, 10));
        assert!(!probe.link_dead(2, 10), "only the origin path is holed");
        assert_eq!(faults.crash_count(), 1);
        assert_eq!(
            faults.crashed_caches().collect::<Vec<_>>(),
            vec![CacheId(0)]
        );
    }

    #[test]
    fn schedule_derivation_matches_point_in_time_state() {
        let mut s = FaultSchedule::new();
        s.push(1_000.0, FaultKind::CacheDown { cache: CacheId(3) });
        s.push(2_000.0, FaultKind::CacheRetire { cache: CacheId(1) });
        s.push(5_000.0, FaultKind::CacheUp { cache: CacheId(3) });
        let mid = FormationFaults::from_schedule(&s, 3_000.0);
        assert_eq!(
            mid.crashed_caches().collect::<Vec<_>>(),
            vec![CacheId(1), CacheId(3)]
        );
        let late = FormationFaults::from_schedule(&s, 10_000.0);
        assert_eq!(
            late.crashed_caches().collect::<Vec<_>>(),
            vec![CacheId(1)],
            "recovered cache is back, retirement is permanent"
        );
        assert!(late.to_probe_faults().is_node_down(2));
    }

    #[test]
    fn stub_domain_outage_crashes_exactly_the_domains_caches() {
        let mut rng = StdRng::seed_from_u64(11);
        let topo = TransitStubConfig::for_caches(40).generate(&mut rng);
        let network =
            EdgeNetwork::place(&topo, 40, OriginPlacement::TransitNode, &mut rng).unwrap();

        // Every cache sits in exactly one stub domain, so summing the
        // per-domain outages covers each cache once.
        let mut seen = Vec::new();
        for d in 0..topo.stub_domains().len() {
            let faults = FormationFaults::new().stub_domain_outage(&topo, &network, d);
            for c in faults.crashed_caches() {
                seen.push(c.index());
            }
            // Crashed caches really are placed in that domain.
            for c in faults.crashed_caches() {
                let node = network.cache_nodes()[c.index()];
                assert!(topo.stub_domains()[d].nodes.contains(&node));
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());

        // An out-of-range domain is a no-op.
        let none = FormationFaults::new().stub_domain_outage(&topo, &network, 10_000);
        assert!(none.is_empty());
    }
}
