//! Integration test: trace persistence and replay.
//!
//! The paper's simulator is log-file-driven; these tests check that a
//! workload written to the text trace format replays to bit-identical
//! simulation results.

use edge_cache_groups::prelude::*;
use edge_cache_groups::workload::{read_trace, write_trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn persisted_trace_replays_identically() {
    let caches = 30;
    let mut rng = StdRng::seed_from_u64(21);
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let workload = SportingEventConfig::default()
        .caches(caches)
        .documents(300)
        .duration_ms(30_000.0)
        .generate(&mut rng);
    let trace = workload.merged_trace();

    // Round trip through the text format.
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).expect("write");
    let reloaded = read_trace(&buf[..]).expect("read");
    assert_eq!(reloaded, trace);

    // Both traces produce identical simulation reports.
    let outcome = GfCoordinator::new(SchemeConfig::sl(5))
        .form_groups(&network, &mut rng)
        .expect("formation");
    let groups = GroupMap::new(caches, outcome.groups().to_vec()).expect("groups");
    let config = SimConfig::default();
    let a = simulate(&network, &groups, &workload.catalog, &trace, config).expect("sim");
    let b = simulate(&network, &groups, &workload.catalog, &reloaded, config).expect("sim");
    assert_eq!(a, b);
}

#[test]
fn hand_written_trace_drives_the_simulator() {
    // A tiny hand-authored trace file exercising request + update lines
    // and comments — the format a user would edit by hand.
    let text = "\
# two caches fight over doc 0
R 0.0 0 0
R 100.0 1 0
U 200.0 0
R 300.0 0 0
R 400.0 1 0
";
    let trace = read_trace(text.as_bytes()).expect("parse");
    assert_eq!(trace.len(), 5);

    let network =
        EdgeNetwork::from_rtt_matrix(edge_cache_groups::topology::fixtures::paper_figure1());
    let catalog = CatalogConfig::default()
        .documents(4)
        .dynamic_fraction(0.0)
        .generate(&mut StdRng::seed_from_u64(1));
    let groups = GroupMap::one_group(6);
    let report = simulate(&network, &groups, &catalog, &trace, SimConfig::default()).expect("sim");

    // Request 1: origin fetch. Request 2: peer hit. After the update,
    // both caches are stale: one more origin fetch, one more peer hit.
    assert_eq!(report.metrics.total_requests(), 4);
    assert_eq!(report.origin_fetches, 2);
    assert_eq!(report.origin_updates, 1);
    let peer_hits: u64 = report.metrics.per_cache().iter().map(|a| a.peer_hits).sum();
    assert_eq!(peer_hits, 2);
}
