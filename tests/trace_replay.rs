//! Integration test: trace persistence and replay.
//!
//! The paper's simulator is log-file-driven; these tests check that a
//! workload written to the text trace format replays to bit-identical
//! simulation results, and that the sharded replay engine
//! ([`ecg_replay`](edge_cache_groups::replay)) is bit-identical to the
//! monolithic simulator on every input the latter accepts — across
//! placement policies, freshness protocols, fault schedules, and
//! thread counts.

use edge_cache_groups::prelude::*;
use edge_cache_groups::sim::{FaultKind, FaultSchedule, FreshnessProtocol};
use edge_cache_groups::workload::{generate_updates, read_trace, write_trace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn persisted_trace_replays_identically() {
    let caches = 30;
    let mut rng = StdRng::seed_from_u64(21);
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let workload = SportingEventConfig::default()
        .caches(caches)
        .documents(300)
        .duration_ms(30_000.0)
        .generate(&mut rng);
    let trace = workload.merged_trace();

    // Round trip through the text format.
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).expect("write");
    let reloaded = read_trace(&buf[..]).expect("read");
    assert_eq!(reloaded, trace);

    // Both traces produce identical simulation reports.
    let outcome = GfCoordinator::new(SchemeConfig::sl(5))
        .form_groups(&network, &mut rng)
        .expect("formation");
    let groups = GroupMap::new(caches, outcome.groups().to_vec()).expect("groups");
    let config = SimConfig::default();
    let a = simulate(&network, &groups, &workload.catalog, &trace, config).expect("sim");
    let b = simulate(&network, &groups, &workload.catalog, &reloaded, config).expect("sim");
    assert_eq!(a, b);
}

/// A formed network + sporting-event workload shared by the sharded
/// equivalence tests.
fn formed_fixture(
    caches: usize,
    k: usize,
    seed: u64,
) -> (
    EdgeNetwork,
    GroupMap,
    edge_cache_groups::workload::DocumentCatalog,
    Vec<edge_cache_groups::workload::TraceEvent>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(k, 1.0).landmarks(6))
        .form_groups(&network, &mut rng)
        .expect("formation");
    let groups = GroupMap::new(caches, outcome.groups().to_vec()).expect("groups");
    let workload = SportingEventConfig::default()
        .caches(caches)
        .documents(250)
        .duration_ms(20_000.0)
        .generate(&mut rng);
    (
        network,
        groups,
        workload.catalog.clone(),
        workload.merged_trace(),
    )
}

#[test]
fn sharded_replay_matches_monolithic_across_placements_and_threads() {
    let (network, groups, catalog, trace) = formed_fixture(36, 6, 11);
    for placement in [
        PlacementKind::SingleHolder,
        PlacementKind::adaptive(),
        PlacementKind::d_choices(),
    ] {
        let sim = SimConfig::default().placement(placement).warmup_ms(2_000.0);
        let monolithic = simulate(&network, &groups, &catalog, &trace, sim).expect("sim");
        let config = ReplayConfig::default().sim(sim);
        for threads in [1usize, 2, 8] {
            edge_cache_groups::par::set_max_threads(Some(threads));
            let sharded =
                replay_sharded(&network, &groups, &catalog, &trace, &config).expect("replay");
            edge_cache_groups::par::set_max_threads(None);
            assert_eq!(
                sharded, monolithic,
                "sharded replay diverged ({placement:?}, {threads} threads)"
            );
        }
    }
}

#[test]
fn sharded_replay_matches_monolithic_under_faults_and_freshness() {
    let (network, groups, catalog, trace) = formed_fixture(24, 4, 29);
    let mut schedule = FaultSchedule::new()
        .failover_penalty_ms(4.0)
        .timeline_bucket_ms(5_000.0);
    schedule.push(3_000.0, FaultKind::CacheDown { cache: CacheId(2) });
    schedule.push(6_000.0, FaultKind::BrownoutStart { factor: 2.5 });
    schedule.push(9_000.0, FaultKind::CacheUp { cache: CacheId(2) });
    schedule.push(11_000.0, FaultKind::BrownoutEnd);
    schedule.push(14_000.0, FaultKind::CacheRetire { cache: CacheId(7) });

    for freshness in [
        FreshnessProtocol::InvalidateOnAccess,
        FreshnessProtocol::OriginMulticast,
        FreshnessProtocol::TtlLease { ttl_ms: 2_000.0 },
    ] {
        let sim = SimConfig::default().freshness(freshness);
        let monolithic =
            simulate_with_faults(&network, &groups, &catalog, &trace, sim, &schedule).expect("sim");
        let config = ReplayConfig::default().sim(sim).schedule(schedule.clone());
        let sharded = replay_sharded(&network, &groups, &catalog, &trace, &config).expect("replay");
        assert_eq!(
            sharded, monolithic,
            "sharded replay diverged under faults ({freshness:?})"
        );
    }
}

#[test]
fn streamed_replay_matches_monolithic_on_materialized_inputs() {
    let caches = 40;
    let seed = 5u64;
    let net = SyntheticRttConfig::default().generate(caches + 1, seed);
    let groups: Vec<Vec<CacheId>> = (0..caches)
        .collect::<Vec<_>>()
        .chunks(7)
        .map(|c| c.iter().map(|&i| CacheId(i)).collect())
        .collect();
    let map = GroupMap::new(caches, groups).expect("groups");
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = CatalogConfig::default().documents(300).generate(&mut rng);
    let updates = generate_updates(&catalog, 15_000.0, &mut rng);
    let master: u64 = rng.gen();
    let workload = StreamedWorkload::new(
        RequestConfig::default().rate_per_sec_per_cache(3.0),
        master,
        15_000.0,
    )
    .updates(&updates);
    let sim = SimConfig::default()
        .placement(PlacementKind::adaptive())
        .warmup_ms(1_500.0);
    let config = ReplayConfig::default().sim(sim);

    let streamed = replay_streamed(&net, &map, &catalog, &workload, &config).expect("replay");
    let full = RttMatrix::from_fn(caches + 1, |a, b| net.rtt_ms(a, b));
    let monolithic = simulate(
        &EdgeNetwork::from_rtt_matrix(full),
        &map,
        &catalog,
        &workload.materialize_trace(&catalog, caches),
        sim,
    )
    .expect("sim");
    assert_eq!(streamed, monolithic);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The load-bearing contract: on ANY input the monolithic simulator
    /// accepts, sharded replay is bit-identical — whatever the group
    /// shapes, placement policy, or thread count.
    #[test]
    fn sharded_replay_is_bit_identical_on_arbitrary_inputs(
        seed in any::<u64>(),
        caches in 6usize..30,
        chunk in 1usize..9,
        placement_idx in 0usize..3,
        threads_idx in 0usize..3,
        flash in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        let network = EdgeNetwork::place(
            &topo, caches, OriginPlacement::TransitNode, &mut rng,
        ).unwrap();
        // Contiguous chunks of arbitrary width cover singleton, ragged,
        // and whole-network groups alike.
        let groups: Vec<Vec<CacheId>> = (0..caches)
            .collect::<Vec<_>>()
            .chunks(chunk)
            .map(|c| c.iter().map(|&i| CacheId(i)).collect())
            .collect();
        let map = GroupMap::new(caches, groups).unwrap();
        let workload = SportingEventConfig::default()
            .caches(caches)
            .documents(150)
            .duration_ms(8_000.0)
            .flash_crowd(flash)
            .generate(&mut rng);
        let placement = [
            PlacementKind::SingleHolder,
            PlacementKind::adaptive(),
            PlacementKind::d_choices(),
        ][placement_idx];
        let sim = SimConfig::default().placement(placement);
        let trace = workload.merged_trace();
        let monolithic =
            simulate(&network, &map, &workload.catalog, &trace, sim).unwrap();
        let config = ReplayConfig::default().sim(sim);
        let threads = [1usize, 2, 8][threads_idx];
        edge_cache_groups::par::set_max_threads(Some(threads));
        let sharded =
            replay_sharded(&network, &map, &workload.catalog, &trace, &config).unwrap();
        edge_cache_groups::par::set_max_threads(None);
        prop_assert_eq!(sharded, monolithic);
    }
}

#[test]
fn hand_written_trace_drives_the_simulator() {
    // A tiny hand-authored trace file exercising request + update lines
    // and comments — the format a user would edit by hand.
    let text = "\
# two caches fight over doc 0
R 0.0 0 0
R 100.0 1 0
U 200.0 0
R 300.0 0 0
R 400.0 1 0
";
    let trace = read_trace(text.as_bytes()).expect("parse");
    assert_eq!(trace.len(), 5);

    let network =
        EdgeNetwork::from_rtt_matrix(edge_cache_groups::topology::fixtures::paper_figure1());
    let catalog = CatalogConfig::default()
        .documents(4)
        .dynamic_fraction(0.0)
        .generate(&mut StdRng::seed_from_u64(1));
    let groups = GroupMap::one_group(6);
    let report = simulate(&network, &groups, &catalog, &trace, SimConfig::default()).expect("sim");

    // Request 1: origin fetch. Request 2: peer hit. After the update,
    // both caches are stale: one more origin fetch, one more peer hit.
    assert_eq!(report.metrics.total_requests(), 4);
    assert_eq!(report.origin_fetches, 2);
    assert_eq!(report.origin_updates, 1);
    let peer_hits: u64 = report.metrics.per_cache().iter().map(|a| a.peer_hits).sum();
    assert_eq!(peer_hits, 2);
}
