//! Integration test: fault-injected runs are bit-for-bit reproducible.
//!
//! The fault subsystem's contract is that a (seed, plan) pair pins the
//! whole run: the generated churn plan, the simulation itself, and the
//! serialized report. These tests check the contract at the integration
//! level via the deterministic JSON emitter — byte-identical strings,
//! not just approximately equal metrics.

use edge_cache_groups::faults::{report_to_json, ChurnConfig, FaultPlan};
use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CACHES: usize = 30;
const DURATION_MS: f64 = 40_000.0;

struct Setup {
    network: EdgeNetwork,
    workload: edge_cache_groups::workload::SportingEventWorkload,
    trace: Vec<edge_cache_groups::workload::TraceEvent>,
    groups: GroupMap,
}

fn setup(seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = TransitStubConfig::for_caches(CACHES).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, CACHES, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let outcome = GfCoordinator::new(SchemeConfig::sl(5))
        .form_groups(&network, &mut rng)
        .expect("formation");
    let groups = GroupMap::new(CACHES, outcome.groups().to_vec()).expect("partition");
    let workload = SportingEventConfig::default()
        .caches(CACHES)
        .documents(500)
        .duration_ms(DURATION_MS)
        .generate(&mut rng);
    let trace = workload.merged_trace();
    Setup {
        network,
        workload,
        trace,
        groups,
    }
}

fn run(s: &Setup, plan: &FaultPlan) -> String {
    let report = simulate_with_faults(
        &s.network,
        &s.groups,
        &s.workload.catalog,
        &s.trace,
        SimConfig::default().warmup_ms(DURATION_MS / 6.0),
        &plan.schedule(),
    )
    .expect("simulation succeeds");
    report_to_json(&report)
}

#[test]
fn same_seed_and_plan_give_byte_identical_reports() {
    let plan = ChurnConfig::default()
        .crashes_per_hour_per_cache(40.0)
        .mean_downtime_ms(8_000.0)
        .retirement_fraction(0.2)
        .generate(CACHES, DURATION_MS, &mut StdRng::seed_from_u64(99));
    assert!(!plan.is_empty(), "churn at this rate must produce faults");

    let a = run(&setup(5), &plan);
    let b = run(&setup(5), &plan);
    assert_eq!(a, b, "identical (seed, plan) must serialize identically");

    // The faults actually bit: the degraded class saw requests.
    assert!(!a.contains("\"crashes\":0"));

    // A different workload seed gives a different report.
    let c = run(&setup(6), &plan);
    assert_ne!(a, c);
}

#[test]
fn zero_fault_plan_matches_plain_simulate_exactly() {
    let s = setup(7);
    let faulted = run(&s, &FaultPlan::new());
    let baseline = simulate(
        &s.network,
        &s.groups,
        &s.workload.catalog,
        &s.trace,
        SimConfig::default().warmup_ms(DURATION_MS / 6.0),
    )
    .expect("simulation succeeds");
    assert_eq!(
        faulted,
        report_to_json(&baseline),
        "an empty fault schedule must reproduce the baseline bit-for-bit"
    );
}
