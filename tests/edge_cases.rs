//! Failure-injection and boundary-condition integration tests.
//!
//! The simulator and schemes must behave sensibly on degenerate inputs:
//! single-cache networks, empty traces, pathological capacities,
//! same-instant event storms, and extreme K values.

use edge_cache_groups::prelude::*;
use edge_cache_groups::topology::fixtures::paper_figure1;
use edge_cache_groups::workload::{DocId, Request, TraceEvent, Update};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn figure1_network() -> EdgeNetwork {
    EdgeNetwork::from_rtt_matrix(paper_figure1())
}

fn small_catalog(n: usize) -> edge_cache_groups::workload::DocumentCatalog {
    CatalogConfig::default()
        .documents(n)
        .dynamic_fraction(0.0)
        .generate(&mut StdRng::seed_from_u64(0))
}

fn req(time_ms: f64, cache: usize, doc: usize) -> TraceEvent {
    TraceEvent::Request(Request {
        time_ms,
        cache,
        doc: DocId(doc),
    })
}

#[test]
fn empty_trace_produces_empty_report() {
    let net = figure1_network();
    let cat = small_catalog(5);
    let report = simulate(
        &net,
        &GroupMap::one_group(6),
        &cat,
        &[],
        SimConfig::default(),
    )
    .unwrap();
    assert_eq!(report.metrics.total_requests(), 0);
    assert_eq!(report.average_latency_ms(), 0.0);
    assert_eq!(report.origin_fetches, 0);
    assert_eq!(report.metrics.latency_percentile_ms(0.5), None);
}

#[test]
fn updates_only_trace_touches_no_cache() {
    let net = figure1_network();
    let cat = small_catalog(5);
    let trace: Vec<TraceEvent> = (0..50)
        .map(|i| {
            TraceEvent::Update(Update {
                time_ms: i as f64,
                doc: DocId(i % 5),
            })
        })
        .collect();
    let report = simulate(
        &net,
        &GroupMap::one_group(6),
        &cat,
        &trace,
        SimConfig::default(),
    )
    .unwrap();
    assert_eq!(report.origin_updates, 50);
    assert_eq!(report.metrics.total_requests(), 0);
    assert_eq!(report.cache_stats.lookups, 0);
}

#[test]
fn same_instant_event_storm_is_deterministic_fifo() {
    let net = figure1_network();
    let cat = small_catalog(3);
    // 30 events all at t = 1.0: FIFO means the first request fetches
    // from the origin and the rest of the same cache's requests hit.
    let mut trace = Vec::new();
    for i in 0..30 {
        trace.push(req(1.0, i % 6, 0));
    }
    let a = simulate(
        &net,
        &GroupMap::singletons(6),
        &cat,
        &trace,
        SimConfig::default(),
    )
    .unwrap();
    let b = simulate(
        &net,
        &GroupMap::singletons(6),
        &cat,
        &trace,
        SimConfig::default(),
    )
    .unwrap();
    assert_eq!(a, b);
    // Each cache: 1 origin fetch + 4 local hits.
    assert_eq!(a.origin_fetches, 6);
    assert_eq!(a.cache_stats.fresh_hits, 24);
}

#[test]
fn cache_smaller_than_every_document_degrades_to_origin_only() {
    let net = figure1_network();
    let cat = small_catalog(4);
    let trace: Vec<TraceEvent> = (0..20).map(|i| req(i as f64 * 10.0, 0, i % 4)).collect();
    let report = simulate(
        &net,
        &GroupMap::one_group(6),
        &cat,
        &trace,
        SimConfig::default().cache_capacity_bytes(1), // nothing fits
    )
    .unwrap();
    // Every request goes to the origin; nothing is ever cached.
    assert_eq!(report.origin_fetches, 20);
    assert_eq!(report.cache_stats.fresh_hits, 0);
    assert_eq!(report.cache_stats.insertions, 0);
}

#[test]
fn single_cache_network_works_end_to_end() {
    let mut m = RttMatrix::zeros(2);
    m.set(0, 1, 25.0);
    let net = EdgeNetwork::from_rtt_matrix(m);
    let cat = small_catalog(10);
    let mut rng = StdRng::seed_from_u64(1);
    let requests = RequestConfig::default().generate(&cat, 1, 20_000.0, &mut rng);
    let trace: Vec<TraceEvent> = requests.into_iter().map(TraceEvent::Request).collect();
    let report = simulate(
        &net,
        &GroupMap::singletons(1),
        &cat,
        &trace,
        SimConfig::default(),
    )
    .unwrap();
    assert!(report.metrics.total_requests() > 0);
    // No peers exist: no control traffic at all.
    assert_eq!(report.metrics.control_messages, 0);
    assert_eq!(report.metrics.peer_bytes, 0);
}

#[test]
fn k_equals_n_grouping_simulates_like_singletons() {
    let net = figure1_network();
    let cat = small_catalog(20);
    let mut rng = StdRng::seed_from_u64(2);
    let outcome = GfCoordinator::new(SchemeConfig::sl(6).landmarks(3).plset_multiplier(2))
        .form_groups(&net, &mut rng)
        .unwrap();
    assert_eq!(outcome.groups().len(), 6);
    assert!(outcome.groups().iter().all(|g| g.len() == 1));

    let requests = RequestConfig::default().generate(&cat, 6, 10_000.0, &mut rng);
    let trace: Vec<TraceEvent> = requests.into_iter().map(TraceEvent::Request).collect();
    let from_scheme = simulate(
        &net,
        &GroupMap::new(6, outcome.groups().to_vec()).unwrap(),
        &cat,
        &trace,
        SimConfig::default(),
    )
    .unwrap();
    let singleton = simulate(
        &net,
        &GroupMap::singletons(6),
        &cat,
        &trace,
        SimConfig::default(),
    )
    .unwrap();
    assert_eq!(
        from_scheme.average_latency_ms(),
        singleton.average_latency_ms()
    );
}

#[test]
fn zero_duration_workload_generates_nothing() {
    let cat = small_catalog(5);
    let mut rng = StdRng::seed_from_u64(3);
    let updates = edge_cache_groups::workload::generate_updates(&cat, 0.0, &mut rng);
    assert!(updates.is_empty());
}

#[test]
fn requests_at_trace_end_boundary_are_excluded() {
    // Generators promise t < duration; the simulator accepts any time,
    // but the workload contract holds.
    let cat = small_catalog(5);
    let mut rng = StdRng::seed_from_u64(4);
    let requests = RequestConfig::default()
        .rate_per_sec_per_cache(50.0)
        .generate(&cat, 3, 1_000.0, &mut rng);
    assert!(requests.iter().all(|r| r.time_ms < 1_000.0));
}

#[test]
fn scheme_on_two_cache_network() {
    // Smallest network the schemes accept: landmarks capped, K = 2.
    let mut m = RttMatrix::zeros(3);
    m.set(0, 1, 10.0);
    m.set(0, 2, 20.0);
    m.set(1, 2, 15.0);
    let net = EdgeNetwork::from_rtt_matrix(m);
    let mut rng = StdRng::seed_from_u64(5);
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(2, 1.0))
        .form_groups(&net, &mut rng)
        .unwrap();
    assert_eq!(outcome.groups().len(), 2);
    let total: usize = outcome.groups().iter().map(Vec::len).sum();
    assert_eq!(total, 2);
}
