//! Integration coverage for the unified large-N pipeline
//! ([`GfCoordinator::form_groups_scaled`]) through the facade crate:
//! the scaled path must agree with itself across thread counts and
//! K-means variants, and its outcome must interoperate with the same
//! downstream machinery (GIC, `GroupMap`) as the paper path.

use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn form(
    n: usize,
    variant: KmeansVariant,
    threads: usize,
    seed: u64,
) -> (ScaledFormation, SyntheticRtt) {
    let net = SyntheticRttConfig::default().generate(n + 1, seed);
    let scheme = SchemeConfig::sdsl((n / 50).max(2), 1.0)
        .landmarks(6)
        .plset_multiplier(4)
        .kmeans_max_iterations(15)
        .kmeans_variant(variant)
        .probe(ProbeConfig::noiseless());
    edge_cache_groups::par::set_max_threads(Some(threads));
    let formed = GfCoordinator::new(scheme)
        .form_groups_scaled(&net, &mut StdRng::seed_from_u64(seed))
        .expect("scaled formation");
    edge_cache_groups::par::set_max_threads(None);
    (formed, net)
}

#[test]
fn scaled_formation_is_thread_count_invariant_per_variant() {
    for variant in [
        KmeansVariant::Lloyd,
        KmeansVariant::MiniBatch(MiniBatchConfig::default().batch_size(128).iterations(10)),
    ] {
        let (base, net) = form(600, variant, 1, 77);
        let gic_base = base
            .outcome
            .average_interaction_cost(|a, b| net.rtt_ms(a.index() + 1, b.index() + 1));
        for threads in [2, 4] {
            let (wide, _) = form(600, variant, threads, 77);
            assert_eq!(
                wide.outcome.assignments(),
                base.outcome.assignments(),
                "assignments diverged at {threads} threads"
            );
            let gic = wide
                .outcome
                .average_interaction_cost(|a, b| net.rtt_ms(a.index() + 1, b.index() + 1));
            assert_eq!(gic.to_bits(), gic_base.to_bits());
        }
    }
}

#[test]
fn tree_and_blocked_assignment_agree_over_many_seeds_and_threads() {
    // 30 seeds × forced {1, 2, 8} workers × both nearest-center
    // engines: every combination must produce the identical
    // `GroupingOutcome` (assignments, groups, landmarks, server
    // distances — `PartialEq` covers all fields). This pins the
    // KD-tree's bit-exactness contract end to end through the scaled
    // pipeline, not just at the kernel boundary, and simultaneously
    // re-checks thread-count invariance for both engines. k = 60 keeps
    // the forced-tree runs below the `Auto` threshold on purpose: the
    // knob, not the heuristic, decides the engine under test.
    for seed in 0..30u64 {
        let n = 240;
        let net = SyntheticRttConfig::default().generate(n + 1, 31_000 + seed);
        let run = |assign: AssignMode, threads: usize| {
            let scheme = SchemeConfig::sdsl(60, 1.0)
                .landmarks(6)
                .plset_multiplier(4)
                .kmeans_max_iterations(15)
                .kmeans_assign(assign)
                .probe(ProbeConfig::noiseless());
            edge_cache_groups::par::set_max_threads(Some(threads));
            let formed = GfCoordinator::new(scheme)
                .form_groups_scaled(&net, &mut StdRng::seed_from_u64(seed))
                .expect("scaled formation");
            edge_cache_groups::par::set_max_threads(None);
            formed.outcome
        };
        let base = run(AssignMode::Blocked, 1);
        for assign in [AssignMode::Blocked, AssignMode::Tree] {
            for threads in [1, 2, 8] {
                let outcome = run(assign, threads);
                assert_eq!(
                    outcome, base,
                    "outcome diverged: seed {seed}, {assign:?}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn scaled_outcome_feeds_downstream_group_machinery() {
    let (formed, net) = form(400, KmeansVariant::Lloyd, 2, 5);
    let outcome = &formed.outcome;

    // A real partition: every cache in exactly one group.
    let mut seen: Vec<usize> = outcome
        .groups()
        .iter()
        .flatten()
        .map(|c| c.index())
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..400).collect::<Vec<_>>());

    // Server distances are the oracle's cache-to-origin RTTs.
    for (i, &d) in outcome.server_distances_ms().iter().enumerate() {
        assert_eq!(d.to_bits(), net.rtt_ms(i + 1, 0).to_bits());
    }

    // The grouping drops into the simulator's GroupMap like any paper-
    // path outcome.
    let map = GroupMap::new(400, outcome.groups().to_vec()).expect("valid group map");
    assert_eq!(map.group_count(), outcome.groups().len());

    // Timings are populated and internally consistent.
    let t = formed.timings;
    assert!(t.landmarks_ms >= 0.0 && t.features_ms >= 0.0 && t.clustering_ms >= 0.0);
    assert!(t.total_ms >= t.clustering_ms);
}
