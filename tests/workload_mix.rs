//! Workload-mix assertions at scale.
//!
//! Replays flash-crowd and diurnal request mixes over N = 10 000 caches
//! with the streaming sharded engine and checks the merged report's
//! invariants: sane hit rates, ordered latency percentiles, and the
//! load shifts each modulation is supposed to cause. Nothing here pins
//! exact values — these are the structural properties any correct
//! replay of these mixes must exhibit.

use edge_cache_groups::prelude::*;
use edge_cache_groups::workload::{generate_updates, RateModulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CACHES: usize = 10_000;
const GROUP_SIZE: usize = 50;
const DURATION_MS: f64 = 5_000.0;
const RATE_PER_SEC: f64 = 1.5;
const SEED: u64 = 42;

/// Streams one modulated workload through the sharded replay engine.
/// Topology, groups, catalog, updates, and master seed are identical
/// across calls — only the rate modulation differs.
fn replay_mix(modulation: RateModulation) -> SimReport {
    let net = SyntheticRttConfig::default().generate(CACHES + 1, SEED);
    let groups: Vec<Vec<CacheId>> = (0..CACHES)
        .collect::<Vec<_>>()
        .chunks(GROUP_SIZE)
        .map(|c| c.iter().map(|&i| CacheId(i)).collect())
        .collect();
    let map = GroupMap::new(CACHES, groups).expect("groups");
    let mut rng = StdRng::seed_from_u64(SEED);
    let catalog = CatalogConfig::default().documents(1_500).generate(&mut rng);
    let updates = generate_updates(&catalog, DURATION_MS, &mut rng);
    let master: u64 = rng.gen();
    let workload = StreamedWorkload::new(
        RequestConfig::default()
            .rate_per_sec_per_cache(RATE_PER_SEC)
            .modulation(modulation),
        master,
        DURATION_MS,
    )
    .updates(&updates);
    let config = ReplayConfig::default().sim(SimConfig::default().warmup_ms(DURATION_MS / 6.0));
    replay_streamed(&net, &map, &catalog, &workload, &config).expect("replay")
}

#[test]
fn flash_crowd_and_diurnal_mixes_hold_invariants_at_scale() {
    let constant = replay_mix(RateModulation::Constant);
    let flash = replay_mix(RateModulation::FlashCrowd {
        start_ms: 1_000.0,
        end_ms: 3_000.0,
        multiplier: 4.0,
    });
    let diurnal = replay_mix(RateModulation::Diurnal {
        period_ms: DURATION_MS,
        amplitude: 0.5,
    });

    for (name, report) in [
        ("constant", &constant),
        ("flash", &flash),
        ("diurnal", &diurnal),
    ] {
        let requests = report.metrics.total_requests();
        assert!(
            requests > 40_000,
            "{name}: expected a large-N request volume, got {requests}"
        );
        let hit = report.metrics.group_hit_rate().expect("requests recorded");
        assert!(
            (0.25..1.0).contains(&hit),
            "{name}: implausible group hit rate {hit}"
        );
        let avg = report.average_latency_ms();
        assert!(
            avg.is_finite() && avg > 0.0,
            "{name}: implausible average latency {avg}"
        );
        let p50 = report.metrics.latency_percentile_ms(0.5).expect("p50");
        let p95 = report.metrics.latency_percentile_ms(0.95).expect("p95");
        let p99 = report.metrics.latency_percentile_ms(0.99).expect("p99");
        assert!(
            p50 <= p95 && p95 <= p99,
            "{name}: latency percentiles out of order ({p50} / {p95} / {p99})"
        );
        assert!(
            report.origin_fetches > 0 && report.origin_updates > 0,
            "{name}: origin never touched"
        );
    }

    // A 4x surge over 2 of 5 seconds must raise the measured volume
    // well past the constant run's...
    let (constant_reqs, flash_reqs, diurnal_reqs) = (
        constant.metrics.total_requests() as f64,
        flash.metrics.total_requests() as f64,
        diurnal.metrics.total_requests() as f64,
    );
    assert!(
        flash_reqs > 1.5 * constant_reqs,
        "flash crowd did not surge: {flash_reqs} vs {constant_reqs}"
    );
    // ...while a symmetric day/night swing over one full period leaves
    // the total roughly unchanged.
    let swing = (diurnal_reqs - constant_reqs).abs() / constant_reqs;
    assert!(
        swing < 0.2,
        "diurnal total drifted {swing:.2}x from the constant run"
    );
}
