//! Cross-crate property tests: any formed grouping must be consumable
//! by the rest of the stack.

use edge_cache_groups::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_scheme_output_feeds_groupmap_and_simulator(
        seed in any::<u64>(),
        caches in 10usize..50,
        k_frac in 0.05f64..0.9,
        theta in 0.0f64..3.0,
        sdsl in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        let network = EdgeNetwork::place(
            &topo, caches, OriginPlacement::TransitNode, &mut rng,
        ).unwrap();
        let k = ((caches as f64 * k_frac).ceil() as usize).clamp(1, caches);
        let scheme = if sdsl {
            SchemeConfig::sdsl(k, theta)
        } else {
            SchemeConfig::sl(k)
        };
        let outcome = GfCoordinator::new(scheme.landmarks(6).plset_multiplier(2))
            .form_groups(&network, &mut rng)
            .unwrap();

        // The outcome is a valid GroupMap partition...
        let map = GroupMap::new(caches, outcome.groups().to_vec()).unwrap();
        prop_assert_eq!(map.group_count(), k);

        // ...and the simulator accepts it with any consistent workload.
        let workload = SportingEventConfig::default()
            .caches(caches)
            .documents(200)
            .duration_ms(5_000.0)
            .flash_crowd(false)
            .generate(&mut rng);
        let report = simulate(
            &network,
            &map,
            &workload.catalog,
            &workload.merged_trace(),
            SimConfig::default(),
        ).unwrap();
        prop_assert_eq!(
            report.metrics.total_requests(),
            workload.requests.len() as u64
        );
        let latency = report.average_latency_ms();
        prop_assert!(latency.is_finite() && latency >= 0.0);
    }

    #[test]
    fn group_assignments_respect_server_distance_ordering_under_extreme_theta(
        seed in any::<u64>(),
    ) {
        // With θ very large, (nearly) all initial centers sit close to
        // the origin; the nearest cache's group should on average be no
        // larger than the farthest cache's.
        let caches = 40;
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        let network = EdgeNetwork::place(
            &topo, caches, OriginPlacement::TransitNode, &mut rng,
        ).unwrap();
        let coord = GfCoordinator::new(
            SchemeConfig::sdsl(8, 6.0).landmarks(6).plset_multiplier(2),
        );
        let mut near_total = 0.0;
        let mut far_total = 0.0;
        for s in 0..10u64 {
            let mut form_rng = StdRng::seed_from_u64(seed.wrapping_add(s));
            let outcome = coord.form_groups(&network, &mut form_rng).unwrap();
            let near = network.caches_nearest_origin(5);
            let far = network.caches_farthest_origin(5);
            let mean_size = |set: &[CacheId]| -> f64 {
                set.iter()
                    .map(|&c| outcome.groups()[outcome.group_of(c)].len() as f64)
                    .sum::<f64>() / set.len() as f64
            };
            near_total += mean_size(&near);
            far_total += mean_size(&far);
        }
        // Allow slack: topology randomness can compress the gradient.
        prop_assert!(
            near_total <= far_total * 1.35 + 1.0,
            "near {near_total} vs far {far_total}"
        );
    }

    #[test]
    fn maintainer_keeps_partitions_valid_under_churn(
        seed in any::<u64>(),
    ) {
        use edge_cache_groups::core::GroupMaintainer;
        use edge_cache_groups::coords::ProbeConfig;
        use rand::Rng;

        let caches = 25;
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
        let mut network = EdgeNetwork::place(
            &topo, caches, OriginPlacement::TransitNode, &mut rng,
        ).unwrap();
        let outcome = GfCoordinator::new(
            SchemeConfig::sl(5).landmarks(5).plset_multiplier(2),
        )
        .form_groups(&network, &mut rng)
        .unwrap();
        let mut maintainer =
            GroupMaintainer::new(&network, outcome, ProbeConfig::default());

        // Random churn: joins and retire attempts interleaved.
        for _ in 0..12 {
            if rng.gen_bool(0.6) {
                let n = network.cache_count();
                let rtts: Vec<f64> =
                    (0..n).map(|_| rng.gen_range(1.0..150.0)).collect();
                network = network.with_added_cache(rng.gen_range(5.0..150.0), &rtts);
                maintainer.admit(&network, &mut rng).unwrap();
            } else {
                let candidates: Vec<CacheId> = (0..network.cache_count())
                    .map(CacheId)
                    .filter(|&c| maintainer.group_of(c).is_some())
                    .collect();
                let victim = candidates[rng.gen_range(0..candidates.len())];
                // May legitimately fail (would empty a group); both fine.
                let _ = maintainer.retire(victim);
            }
            // Invariants: groups are disjoint, non-empty, and cover
            // exactly the active caches.
            let mut seen = std::collections::HashSet::new();
            for group in maintainer.groups() {
                prop_assert!(!group.is_empty());
                for &c in group {
                    prop_assert!(seen.insert(c), "cache {c} in two groups");
                    prop_assert_eq!(
                        maintainer.group_of(c).is_some(),
                        true,
                        "member without assignment"
                    );
                }
            }
            prop_assert_eq!(seen.len(), maintainer.active_caches());
            // Drift is well defined.
            let drift = maintainer.drift(&network).unwrap();
            prop_assert!(drift.is_finite() && drift >= 0.0);
        }
    }
}
