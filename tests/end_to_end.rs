//! Integration test: the full pipeline at experiment scale.
//!
//! Topology generation → network placement → group formation → workload
//! generation → simulation, asserting the paper's headline comparative
//! results hold on a mid-size instance.

use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CACHES: usize = 100;
const DURATION_MS: f64 = 90_000.0;

struct Setup {
    network: EdgeNetwork,
    workload: edge_cache_groups::workload::SportingEventWorkload,
    trace: Vec<edge_cache_groups::workload::TraceEvent>,
}

fn setup(seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = TransitStubConfig::for_caches(CACHES).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, CACHES, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let workload = SportingEventConfig::default()
        .caches(CACHES)
        .documents(1_000)
        .duration_ms(DURATION_MS)
        .generate(&mut rng);
    let trace = workload.merged_trace();
    Setup {
        network,
        workload,
        trace,
    }
}

fn run(setup: &Setup, groups: &[Vec<CacheId>]) -> SimReport {
    let map = GroupMap::new(CACHES, groups.to_vec()).expect("valid partition");
    simulate(
        &setup.network,
        &map,
        &setup.workload.catalog,
        &setup.trace,
        SimConfig::default()
            .cache_capacity_bytes(512 * 1024)
            .warmup_ms(DURATION_MS / 6.0),
    )
    .expect("simulation")
}

#[test]
fn formed_groups_always_feed_the_simulator() {
    let s = setup(1);
    for scheme in [SchemeConfig::sl(10), SchemeConfig::sdsl(10, 1.0)] {
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = GfCoordinator::new(scheme)
            .form_groups(&s.network, &mut rng)
            .expect("formation");
        let report = run(&s, outcome.groups());
        assert!(report.average_latency_ms() > 0.0);
        assert_eq!(
            report.metrics.total_requests()
                + s.trace
                    .iter()
                    .filter(|e| {
                        matches!(e, edge_cache_groups::workload::TraceEvent::Request(r)
                            if r.time_ms < DURATION_MS / 6.0)
                    })
                    .count() as u64,
            s.workload.requests.len() as u64,
            "warm-up exclusion accounts for every request"
        );
    }
}

#[test]
fn cooperation_beats_isolation_at_scale() {
    let s = setup(3);
    let mut rng = StdRng::seed_from_u64(4);
    let outcome = GfCoordinator::new(SchemeConfig::sl(10))
        .form_groups(&s.network, &mut rng)
        .expect("formation");
    let grouped = run(&s, outcome.groups());
    let isolated = run(
        &s,
        &(0..CACHES).map(|c| vec![CacheId(c)]).collect::<Vec<_>>(),
    );
    assert!(
        grouped.average_latency_ms() < isolated.average_latency_ms(),
        "grouped {:.2} vs isolated {:.2}",
        grouped.average_latency_ms(),
        isolated.average_latency_ms()
    );
    assert!(grouped.origin_fetches < isolated.origin_fetches);
    assert!(grouped.metrics.group_hit_rate() > isolated.metrics.group_hit_rate());
}

#[test]
fn sdsl_beats_sl_on_average() {
    // The paper's headline: SDSL's server-distance-sensitive grouping
    // yields lower client latency. Averaged over formation seeds to
    // absorb K-means randomness.
    let s = setup(5);
    let k = 15;
    let mean_latency = |scheme: SchemeConfig| -> f64 {
        let seeds = [10u64, 11, 12];
        let total: f64 = seeds
            .iter()
            .map(|&seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome = GfCoordinator::new(scheme.clone())
                    .form_groups(&s.network, &mut rng)
                    .expect("formation");
                run(&s, outcome.groups()).average_latency_ms()
            })
            .sum();
        total / seeds.len() as f64
    };
    let sl = mean_latency(SchemeConfig::sl(k));
    let sdsl = mean_latency(SchemeConfig::sdsl(k, 1.0));
    assert!(sdsl < sl, "sdsl {sdsl:.2} vs sl {sl:.2}");
}

#[test]
fn greedy_landmarks_beat_mindist_on_interaction_cost() {
    use edge_cache_groups::core::LandmarkSelector;
    let s = setup(7);
    let gic = |selector: LandmarkSelector| -> f64 {
        let seeds = [1u64, 2, 3, 4, 5];
        let total: f64 = seeds
            .iter()
            .map(|&seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome = GfCoordinator::new(SchemeConfig::sl(10).selector(selector))
                    .form_groups(&s.network, &mut rng)
                    .expect("formation");
                outcome.average_interaction_cost(|a, b| s.network.cache_to_cache(a, b))
            })
            .sum();
        total / seeds.len() as f64
    };
    let greedy = gic(LandmarkSelector::GreedyMaxMin);
    let mindist = gic(LandmarkSelector::MinDist);
    assert!(
        greedy < mindist,
        "greedy {greedy:.2} vs min-dist {mindist:.2}"
    );
}

#[test]
fn whole_pipeline_is_deterministic_per_seed() {
    let build = || {
        let s = setup(9);
        let mut rng = StdRng::seed_from_u64(10);
        let outcome = GfCoordinator::new(SchemeConfig::sdsl(8, 1.0))
            .form_groups(&s.network, &mut rng)
            .expect("formation");
        let report = run(&s, outcome.groups());
        (outcome, report)
    };
    let (o1, r1) = build();
    let (o2, r2) = build();
    assert_eq!(o1, o2);
    assert_eq!(r1, r2);
}
