//! Integration test: the observability subsystem is deterministic.
//!
//! An observed pipeline run — group formation, fault-injected
//! simulation, and churn replay, all feeding one [`Obs`] bundle — must
//! serialize to a byte-identical JSON document when repeated with the
//! same seeds, and that document must cover every instrumented
//! subsystem: clustering, probing, simulation, maintenance, and faults.

use edge_cache_groups::faults::{ChurnConfig, FaultPlan};
use edge_cache_groups::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

const CACHES: usize = 30;
const DURATION_MS: f64 = 40_000.0;

/// Runs the full observed pipeline from a seed and returns the
/// serialized metrics document.
fn observed_run(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = TransitStubConfig::for_caches(CACHES).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, CACHES, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let workload = SportingEventConfig::default()
        .caches(CACHES)
        .documents(500)
        .duration_ms(DURATION_MS)
        .generate(&mut rng);
    let trace = workload.merged_trace();
    let plan = ChurnConfig::default()
        .crashes_per_hour_per_cache(40.0)
        .mean_downtime_ms(8_000.0)
        .retirement_fraction(0.2)
        .generate(CACHES, DURATION_MS, &mut StdRng::seed_from_u64(seed + 1));
    assert!(!plan.is_empty(), "churn at this rate must produce faults");

    let mut obs = Obs::new();
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(5, 1.0))
        .form_groups_observed(&network, &mut rng, Some(&mut obs))
        .expect("formation");
    let groups = GroupMap::new(CACHES, outcome.groups().to_vec()).expect("partition");
    simulate_with_faults_observed(
        &network,
        &groups,
        &workload.catalog,
        &trace,
        SimConfig::default().warmup_ms(DURATION_MS / 6.0),
        &plan.schedule(),
        Some(&mut obs),
    )
    .expect("simulation succeeds");
    let maintainer = GroupMaintainer::new(&network, outcome, ProbeConfig::default());
    ChurnDriver::new(maintainer)
        .apply_observed(&network, &plan, &mut rng, Some(&mut obs))
        .expect("churn replay succeeds");
    obs.to_json()
}

#[test]
fn same_seed_gives_byte_identical_metrics_json() {
    let a = observed_run(5);
    let b = observed_run(5);
    assert_eq!(a, b, "same seeds must serialize identically");

    let c = observed_run(6);
    assert_ne!(a, c, "a different seed must change the document");
}

#[test]
fn observed_run_covers_every_instrumented_subsystem() {
    let json = observed_run(5);
    for key in [
        // clustering
        "\"kmeans.iterations\"",
        "\"kmeans.runs\"",
        // probing
        "\"probe.measurements\"",
        "\"probe.rtt_ms\"",
        // scheme pipeline phases
        "\"scheme.landmarks\"",
        "\"scheme.positions\"",
        "\"scheme.clustering\"",
        // simulation
        "\"sim.local_hits\"",
        "\"sim.peer_hits\"",
        "\"sim.coop_misses\"",
        "\"sim.fault_events\"",
        "\"sim.latency_ms\"",
        // maintenance + churn
        "\"maintenance.retirements\"",
        "\"churn.retirements\"",
        "\"churn.max_drift\"",
    ] {
        assert!(json.contains(key), "document is missing {key}");
    }
}

#[test]
fn instrumentation_does_not_perturb_results() {
    let mut rng = StdRng::seed_from_u64(9);
    let topo = TransitStubConfig::for_caches(CACHES).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, CACHES, OriginPlacement::TransitNode, &mut rng)
        .expect("placement");
    let workload = SportingEventConfig::default()
        .caches(CACHES)
        .documents(500)
        .duration_ms(DURATION_MS)
        .generate(&mut rng);
    let trace = workload.merged_trace();

    let mut obs = Obs::new();
    let plain = GfCoordinator::new(SchemeConfig::sl(5))
        .form_groups(&network, &mut StdRng::seed_from_u64(17))
        .expect("plain formation");
    let observed = GfCoordinator::new(SchemeConfig::sl(5))
        .form_groups_observed(&network, &mut StdRng::seed_from_u64(17), Some(&mut obs))
        .expect("observed formation");
    assert_eq!(plain.groups(), observed.groups());

    let groups = GroupMap::new(CACHES, plain.groups().to_vec()).expect("partition");
    let config = SimConfig::default().warmup_ms(DURATION_MS / 6.0);
    let baseline =
        simulate(&network, &groups, &workload.catalog, &trace, config).expect("plain simulation");
    let instrumented = simulate_with_faults_observed(
        &network,
        &groups,
        &workload.catalog,
        &trace,
        config,
        &FaultPlan::new().schedule(),
        Some(&mut obs),
    )
    .expect("observed simulation");
    assert_eq!(
        edge_cache_groups::faults::report_to_json(&baseline),
        edge_cache_groups::faults::report_to_json(&instrumented),
        "observation must not change simulation results"
    );
}
