//! Integration test: the paper's worked example (Figures 1 and 2).
//!
//! Walks the exact 6-cache network from the paper through the public
//! API: landmark selection with the figure's PLSet, feature-vector
//! construction, and K-means grouping into the three natural pairs.

use edge_cache_groups::coords::{build_feature_vectors, ProbeConfig, Prober};
use edge_cache_groups::core::{select_landmarks, LandmarkSelector};
use edge_cache_groups::prelude::*;
use edge_cache_groups::topology::fixtures::paper_figure1;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn figure1_landmark_choice_matches_paper() {
    // With the figure's PLSet {Ec0, Ec1, Ec3, Ec4} the greedy phase must
    // pick {Os, Ec0, Ec4} with MinDist 12.0. The PLSet draw is random,
    // so scan seeds until the draw matches the figure.
    let matrix = paper_figure1();
    let mut found = false;
    for seed in 0..5_000u64 {
        let prober = Prober::new(&matrix, ProbeConfig::noiseless());
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = select_landmarks(&prober, LandmarkSelector::GreedyMaxMin, 3, 2, &mut rng)
            .expect("selection");
        let mut plset = sel.plset.clone();
        plset.sort_unstable();
        if plset == vec![1, 2, 4, 5] {
            let mut lms = sel.landmarks.clone();
            lms.sort_unstable();
            assert_eq!(lms, vec![0, 1, 5], "landmarks must be {{Os, Ec0, Ec4}}");
            assert_eq!(sel.min_dist_ms, Some(12.0));
            found = true;
            break;
        }
    }
    assert!(found, "no seed reproduced the figure's PLSet");
}

#[test]
fn figure2_feature_vectors_match_paper() {
    let matrix = paper_figure1();
    let prober = Prober::new(&matrix, ProbeConfig::noiseless());
    let mut rng = StdRng::seed_from_u64(0);
    // Landmarks {Os, Ec0, Ec4} = matrix indices {0, 1, 5}.
    let caches: Vec<usize> = (1..7).collect();
    let fvs = build_feature_vectors(&prober, &caches, &[0, 1, 5], &mut rng);
    // Each cache's vector is its RTT row restricted to the landmarks.
    let expected = [
        [12.0, 0.0, 17.0],  // Ec0
        [8.0, 4.0, 14.4],   // Ec1
        [12.0, 17.0, 17.0], // Ec2
        [8.0, 14.4, 14.4],  // Ec3
        [12.0, 17.0, 0.0],  // Ec4
        [8.0, 14.4, 4.0],   // Ec5
    ];
    for (fv, want) in fvs.iter().zip(&expected) {
        assert_eq!(fv.as_slice(), want);
    }
}

#[test]
fn figure2_clustering_finds_the_three_pairs() {
    let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
    let coordinator = GfCoordinator::new(
        SchemeConfig::sl(3)
            .landmarks(3)
            .plset_multiplier(2)
            .probe(ProbeConfig::noiseless()),
    );
    let mut hits = 0;
    let seeds = 40;
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = coordinator
            .form_groups(&network, &mut rng)
            .expect("formation");
        let mut groups: Vec<Vec<usize>> = outcome
            .groups()
            .iter()
            .map(|g| g.iter().map(|c| c.index()).collect())
            .collect();
        groups.sort();
        if groups == vec![vec![0, 1], vec![2, 3], vec![4, 5]] {
            hits += 1;
        }
    }
    assert!(
        hits * 2 > seeds,
        "natural pairs found on only {hits}/{seeds} seeds"
    );
}

#[test]
fn figure1_fixture_is_usable_as_an_edge_network() {
    let network = EdgeNetwork::from_rtt_matrix(paper_figure1());
    assert_eq!(network.cache_count(), 6);
    // N = 6, K = 3, L = 3, M = 2 from the figure caption are all
    // representable.
    assert_eq!(network.caches_nearest_origin(3).len(), 3);
    assert!(network.mean_origin_rtt() > 0.0);
}
