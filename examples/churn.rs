//! Fault injection and churn: crashes, brownouts, graceful degradation.
//!
//! Walks the fault subsystem end to end:
//!
//! 1. form groups with SDSL and simulate a fault-free baseline,
//! 2. script a fault plan (a crash with recovery, a permanent
//!    retirement, an origin brownout) and re-run the identical trace,
//! 3. compare healthy- vs degraded-window latency and the failover
//!    counts,
//! 4. generate *random* churn at a fixed rate and replay it through
//!    incremental group maintenance, watching interaction-cost drift.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn
//! ```

use edge_cache_groups::coords::ProbeConfig;
use edge_cache_groups::faults::ChurnDriver;
use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let caches = 40;
    let duration_ms = 60_000.0;
    let mut rng = StdRng::seed_from_u64(41);

    // 1. Network, groups, workload, fault-free baseline.
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)?;
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(6, 1.0)).form_groups(&network, &mut rng)?;
    let maintainer = GroupMaintainer::new(&network, outcome.clone(), ProbeConfig::default());
    let groups = GroupMap::new(caches, outcome.groups().to_vec())?;
    let workload = SportingEventConfig::default()
        .caches(caches)
        .documents(800)
        .duration_ms(duration_ms)
        .generate(&mut rng);
    let trace = workload.merged_trace();
    let config = SimConfig::default().warmup_ms(duration_ms / 6.0);

    let baseline = simulate(&network, &groups, &workload.catalog, &trace, config)?;
    println!("— fault-free baseline —");
    println!("{baseline}\n");

    // 2. A scripted fault plan: cache 3 crashes 15 s in and is back 20 s
    //    later, cache 7 is retired for good, and the origin browns out
    //    (4x slower) for 10 s in the middle of the run.
    let plan = FaultPlan::new()
        .crash(CacheId(3), 15_000.0, 20_000.0)
        .retire(CacheId(7), 25_000.0)
        .brownout(30_000.0, 10_000.0, 4.0);
    let faulted = simulate_with_faults(
        &network,
        &groups,
        &workload.catalog,
        &trace,
        config,
        &plan.schedule(),
    )?;
    println!("— same trace, with faults —");
    println!("{faulted}\n");

    // 3. How much did the faults cost?
    let deg = &faulted.metrics.degradation;
    println!(
        "latency: {:.2} ms baseline -> {:.2} ms faulted \
         (healthy windows {:.2} ms, degraded windows {:.2} ms)",
        baseline.average_latency_ms(),
        faulted.average_latency_ms(),
        deg.healthy.mean_latency_ms().unwrap_or(0.0),
        deg.degraded.mean_latency_ms().unwrap_or(0.0),
    );

    // 4. Random churn replayed through group maintenance: crashed
    //    caches leave their groups, recovered ones re-probe the
    //    landmarks and rejoin; drift tracks how far the grouping has
    //    moved from its formation-time interaction cost.
    let churn_plan = ChurnConfig::default()
        .crashes_per_hour_per_cache(20.0)
        .mean_downtime_ms(10_000.0)
        .retirement_fraction(0.1)
        .generate(caches, duration_ms, &mut rng);
    let mut driver = ChurnDriver::new(maintainer);
    driver.apply(&network, &churn_plan, &mut rng)?;
    println!(
        "\nchurn: {} removals, {} re-admissions, {} skipped \
         (would empty a group); max drift {:.3}",
        driver.retirements(),
        driver.readmissions(),
        driver.skipped_retirements(),
        driver.max_drift(),
    );
    for sample in driver.drift_series() {
        println!(
            "  t = {:6.1} s  drift {:.3}",
            sample.time_ms / 1000.0,
            sample.drift
        );
    }
    Ok(())
}
