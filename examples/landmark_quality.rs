//! Landmark quality study: how much does landmark selection matter?
//!
//! Compares the SL scheme's greedy max–min landmark selection against
//! random and (adversarial) min-dist selection across probe-noise
//! levels, reporting the clustering accuracy each achieves — the paper's
//! §5.1 study, plus a measurement-noise dimension the paper holds fixed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example landmark_quality
//! ```

use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let caches = 150;
    let k = 15;
    let seeds: Vec<u64> = (0..5).collect();

    let mut rng = StdRng::seed_from_u64(99);
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)?;

    println!(
        "{caches} caches, K = {k}, average group interaction cost (ms) over {} seeds",
        seeds.len()
    );
    println!(
        "\n{:>12} {:>12} {:>12} {:>12}",
        "probe noise", "greedy (SL)", "random", "min-dist"
    );

    for sigma in [0.0, 0.05, 0.15, 0.30] {
        let mut row = Vec::new();
        for selector in [
            LandmarkSelector::GreedyMaxMin,
            LandmarkSelector::Random,
            LandmarkSelector::MinDist,
        ] {
            let scheme = SchemeConfig::sl(k).landmarks(20).selector(selector).probe(
                ProbeConfig::default()
                    .noise_sigma(sigma)
                    .probes_per_measurement(3),
            );
            let coord = GfCoordinator::new(scheme);
            let mut total = 0.0;
            for &seed in &seeds {
                let mut run_rng = StdRng::seed_from_u64(seed);
                let outcome = coord.form_groups(&network, &mut run_rng)?;
                total += outcome.average_interaction_cost(|a, b| network.cache_to_cache(a, b));
            }
            row.push(total / seeds.len() as f64);
        }
        println!(
            "{:>11.0}% {:>12.2} {:>12.2} {:>12.2}",
            sigma * 100.0,
            row[0],
            row[1],
            row[2]
        );
    }

    println!(
        "\nlower is better; the greedy selector should dominate min-dist and \
         edge out random at every noise level."
    );
    Ok(())
}
