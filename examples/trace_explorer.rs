//! Trace explorer: generate, persist, reload and replay a workload.
//!
//! Demonstrates the trace tooling end to end: build a sporting-event
//! workload, write it to a trace file in the line format, read it back,
//! verify the round trip, and replay it through the simulator.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_explorer
//! ```

use edge_cache_groups::prelude::*;
use edge_cache_groups::workload::{read_trace, write_trace, TraceEvent, TraceStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let caches = 40;
    let mut rng = StdRng::seed_from_u64(11);

    // Generate a workload and persist its merged trace.
    let workload = SportingEventConfig::default()
        .caches(caches)
        .documents(800)
        .duration_ms(90_000.0)
        .generate(&mut rng);
    let trace = workload.merged_trace();

    let path = std::env::temp_dir().join("ecg_trace_explorer.trace");
    write_trace(BufWriter::new(File::create(&path)?), &trace)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} events ({} requests, {} updates) to {} ({bytes} bytes)",
        trace.len(),
        workload.requests.len(),
        workload.updates.len(),
        path.display()
    );

    // Read it back and confirm the round trip is lossless.
    let reloaded = read_trace(BufReader::new(File::open(&path)?))?;
    assert_eq!(reloaded, trace, "trace round-trip must be exact");
    println!("round trip verified: {} events identical", reloaded.len());

    // Summarize the trace.
    let stats = TraceStats::compute(&reloaded);
    println!(
        "stats: {} requests / {} updates over {:.0} ms; {} active caches, \
         {} distinct docs, top-10 docs take {:.1}% of requests",
        stats.requests,
        stats.updates,
        stats.span_ms,
        stats.active_caches,
        stats.distinct_docs,
        100.0 * stats.top10_share,
    );

    // Inspect the request mix.
    let mut per_cache = vec![0usize; caches];
    let mut hottest = std::collections::HashMap::new();
    for event in &reloaded {
        if let TraceEvent::Request(r) = event {
            per_cache[r.cache] += 1;
            *hottest.entry(r.doc).or_insert(0usize) += 1;
        }
    }
    let (busiest, load) = per_cache
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("caches exist");
    let (hot_doc, hits) = hottest
        .iter()
        .max_by_key(|(_, &c)| c)
        .expect("requests exist");
    println!("busiest cache: Ec{busiest} with {load} requests; hottest doc: {hot_doc} with {hits} requests");

    // Replay it through the simulator on a fresh network.
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)?;
    let outcome = GfCoordinator::new(SchemeConfig::sl(5)).form_groups(&network, &mut rng)?;
    let groups = GroupMap::new(caches, outcome.groups().to_vec())?;
    let report = simulate(
        &network,
        &groups,
        &workload.catalog,
        &reloaded,
        SimConfig::default(),
    )?;
    println!(
        "replay: avg latency {:.2} ms, group hit rate {:.1}%, {} origin fetches, {} updates applied",
        report.average_latency_ms(),
        100.0 * report.metrics.group_hit_rate().unwrap_or(0.0),
        report.origin_fetches,
        report.origin_updates,
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
