//! Quickstart: form cooperative cache groups and measure what they buy.
//!
//! Builds an 80-cache edge network on a synthetic transit-stub topology,
//! partitions it with the SDSL scheme, and replays a sporting-event
//! workload through the simulator — comparing against no cooperation at
//! all.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let caches = 80;

    // 1. An edge network: origin + caches placed on a transit-stub
    //    topology (the paper's GT-ITM setting).
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)?;
    println!(
        "network: {} caches, mean RTT to origin {:.1} ms",
        network.cache_count(),
        network.mean_origin_rtt()
    );

    // 2. Form 8 cooperative groups with the SDSL scheme (θ = 1).
    let outcome = GfCoordinator::new(SchemeConfig::sdsl(8, 1.0)).form_groups(&network, &mut rng)?;
    let gic = outcome.average_interaction_cost(|a, b| network.cache_to_cache(a, b));
    println!(
        "sdsl: {} groups, sizes {:?}, avg group interaction cost {:.1} ms, {} probes",
        outcome.groups().len(),
        outcome.groups().iter().map(Vec::len).collect::<Vec<_>>(),
        gic,
        outcome.probes_sent(),
    );

    // 3. Evaluate in simulation against the no-cooperation baseline.
    let workload = SportingEventConfig::default()
        .caches(caches)
        .duration_ms(120_000.0)
        .generate(&mut rng);
    let trace = workload.merged_trace();
    let config = SimConfig::default();

    let grouped = simulate(
        &network,
        &GroupMap::new(caches, outcome.groups().to_vec())?,
        &workload.catalog,
        &trace,
        config,
    )?;
    let isolated = simulate(
        &network,
        &GroupMap::singletons(caches),
        &workload.catalog,
        &trace,
        config,
    )?;

    println!("\n{:<22} {:>12} {:>12}", "", "cooperative", "isolated");
    println!(
        "{:<22} {:>9.2} ms {:>9.2} ms",
        "avg client latency",
        grouped.average_latency_ms(),
        isolated.average_latency_ms()
    );
    println!(
        "{:<22} {:>11.1}% {:>11.1}%",
        "group hit rate",
        100.0 * grouped.metrics.group_hit_rate().unwrap_or(0.0),
        100.0 * isolated.metrics.group_hit_rate().unwrap_or(0.0)
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "origin fetches", grouped.origin_fetches, isolated.origin_fetches
    );
    Ok(())
}
