//! Dynamic network maintenance: joins, departures, drift, re-formation.
//!
//! The paper forms groups once for a static network. Real CDNs churn.
//! This example walks the maintenance lifecycle:
//!
//! 1. form groups with SDSL,
//! 2. admit a wave of new caches incrementally (each probes the
//!    existing landmarks and joins the nearest group),
//! 3. retire a few caches,
//! 4. watch interaction-cost drift accumulate, and
//! 5. trigger a full re-formation once drift crosses the threshold.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dynamic_network
//! ```

use edge_cache_groups::coords::ProbeConfig;
use edge_cache_groups::core::GroupMaintainer;
use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let initial_caches = 60;
    let mut rng = StdRng::seed_from_u64(31);

    // Build the initial deployment and form groups.
    let topo = TransitStubConfig::for_caches(initial_caches + 20).generate(&mut rng);
    let mut network = EdgeNetwork::place(
        &topo,
        initial_caches,
        OriginPlacement::TransitNode,
        &mut rng,
    )?;
    let coordinator = GfCoordinator::new(SchemeConfig::sdsl(8, 1.0));
    let outcome = coordinator.form_groups(&network, &mut rng)?;
    println!(
        "formed {} groups over {} caches (sizes {:?})",
        outcome.groups().len(),
        initial_caches,
        outcome.groups().iter().map(Vec::len).collect::<Vec<_>>()
    );
    let mut maintainer = GroupMaintainer::new(&network, outcome, ProbeConfig::default());

    // A wave of expansion: 10 new caches join one by one. Each new
    // cache appears "near" a random existing cache (same stub domain in
    // spirit): close to its anchor, anchored RTTs elsewhere.
    for wave in 0..10 {
        let n = network.cache_count();
        let anchor = CacheId(rng.gen_range(0..n));
        let rtts: Vec<f64> = (0..n)
            .map(|i| {
                if CacheId(i) == anchor {
                    rng.gen_range(0.5..2.0)
                } else {
                    network.cache_to_cache(anchor, CacheId(i)) + rng.gen_range(0.5..2.0)
                }
            })
            .collect();
        let to_origin = network.cache_to_origin(anchor) + rng.gen_range(0.5..2.0);
        network = network.with_added_cache(to_origin, &rtts);
        let group = maintainer.admit(&network, &mut rng)?;
        let drift = maintainer.drift(&network)?;
        println!(
            "join {:>2}: Ec{} near {} -> group {} (drift {:.3})",
            wave + 1,
            n,
            anchor,
            group,
            drift
        );
    }

    // A few departures.
    for _ in 0..3 {
        let candidates: Vec<CacheId> = (0..network.cache_count())
            .map(CacheId)
            .filter(|&c| maintainer.group_of(c).is_some())
            .collect();
        let victim = candidates[rng.gen_range(0..candidates.len())];
        match maintainer.retire(victim) {
            Ok(outcome) if outcome.was_landmark => {
                println!("retired {victim} (was a landmark -- consider re-forming)")
            }
            Ok(_) => println!("retired {victim}"),
            Err(e) => println!("could not retire {victim}: {e}"),
        }
    }

    // Check drift and re-form if the incremental decisions have decayed
    // the grouping too far.
    let drift = maintainer.drift(&network)?;
    let threshold = 1.15;
    println!(
        "\nfinal drift {:.3} (threshold {threshold}); {} active caches, {} retired",
        drift,
        maintainer.active_caches(),
        maintainer.retired().len()
    );
    if maintainer.needs_reformation(&network, threshold)? {
        let refreshed = maintainer.reform(&coordinator, &network, &mut rng)?;
        println!(
            "re-formed: {} groups (sizes {:?}), drift reset to {:.3}",
            refreshed.groups().len(),
            refreshed.groups().iter().map(Vec::len).collect::<Vec<_>>(),
            refreshed.drift(&network)?
        );
    } else {
        println!("incremental maintenance is holding; no re-formation needed");
    }
    Ok(())
}
