//! CDN planning: how many groups, and which scheme?
//!
//! The motivating question a CDN operator actually faces: given a fleet
//! of edge caches and a dynamic-content origin, sweep the number of
//! cooperative groups `K` and compare the SL and SDSL schemes on
//! end-to-end client latency. Reproduces the shape of the paper's
//! Figure 9 at a planner-friendly scale and prints a recommendation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cdn_planner
//! ```

use edge_cache_groups::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let caches = 120;
    let mut rng = StdRng::seed_from_u64(2026);

    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)?;
    let workload = SportingEventConfig::default()
        .caches(caches)
        .documents(1_500)
        .duration_ms(180_000.0)
        .generate(&mut rng);
    let trace = workload.merged_trace();
    let sim_config = SimConfig::default()
        .cache_capacity_bytes(512 * 1024)
        .warmup_ms(30_000.0);

    println!(
        "planning for {caches} caches, {} requests",
        workload.requests.len()
    );

    // A data-driven starting point: sweep K on clustering silhouette
    // before paying for any simulation.
    let suggestion = GfCoordinator::new(SchemeConfig::sl(1)).suggest_groups(
        &network,
        &[4, 8, 12, 16, 24, 32],
        &mut rng,
    )?;
    println!(
        "silhouette sweep suggests K = {} (score {:.3})",
        suggestion.k, suggestion.score
    );
    println!(
        "\n{:>4} {:>14} {:>14} {:>12}",
        "K", "SL (ms)", "SDSL (ms)", "SDSL gain"
    );

    let mut best: Option<(usize, &str, f64)> = None;
    for k in [4, 8, 12, 16, 24, 32] {
        let mut latencies = [0.0f64; 2];
        for (slot, scheme) in [SchemeConfig::sl(k), SchemeConfig::sdsl(k, 1.0)]
            .into_iter()
            .enumerate()
        {
            // Average over a few formation seeds: K-means is randomized.
            let mut sum = 0.0;
            let seeds = 3;
            for s in 0..seeds {
                let mut form_rng = StdRng::seed_from_u64(1_000 + s);
                let outcome =
                    GfCoordinator::new(scheme.clone()).form_groups(&network, &mut form_rng)?;
                let groups = GroupMap::new(caches, outcome.groups().to_vec())?;
                let report = simulate(&network, &groups, &workload.catalog, &trace, sim_config)?;
                sum += report.average_latency_ms();
            }
            latencies[slot] = sum / seeds as f64;
        }
        let gain = 100.0 * (latencies[0] - latencies[1]) / latencies[0];
        println!(
            "{:>4} {:>11.2} ms {:>11.2} ms {:>11.1}%",
            k, latencies[0], latencies[1], gain
        );
        for (name, latency) in [("SL", latencies[0]), ("SDSL", latencies[1])] {
            match best {
                Some((_, _, incumbent)) if latency >= incumbent => {}
                _ => best = Some((k, name, latency)),
            }
        }
    }

    let (k, scheme, latency) = best.expect("at least one configuration ran");
    println!("\nrecommendation: {scheme} with K = {k} (≈ {latency:.2} ms average latency)");
    Ok(())
}
