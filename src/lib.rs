//! # edge-cache-groups
//!
//! A reproduction of *Efficient Formation of Edge Cache Groups for
//! Dynamic Content Delivery* (Ramaswamy, Liu & Zhang, ICDCS 2006) as a
//! Rust workspace, re-exported here as one crate.
//!
//! The paper asks: given an origin server and `N` edge caches, how do
//! you partition the caches into `K` cooperative groups so cooperation
//! is both *effective* (high group hit rates) and *efficient* (low group
//! interaction cost)? It answers with two schemes:
//!
//! * **SL** — cluster caches by mutual network proximity, estimated via
//!   greedily chosen Internet landmarks and RTT feature vectors.
//! * **SDSL** — additionally shrink groups near the origin server and
//!   grow them with server distance.
//!
//! ## Module map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`topology`] | `ecg-topology` | transit-stub topologies, RTT matrices, [`topology::EdgeNetwork`] |
//! | [`coords`] | `ecg-coords` | probing, feature vectors, GNP, Vivaldi |
//! | [`clustering`] | `ecg-clustering` | K-means, initializers, quality metrics |
//! | [`workload`] | `ecg-workload` | Zipf catalogs, request/update streams, traces |
//! | [`cache`] | `ecg-cache` | utility/LRU/LFU/GDSF document caches |
//! | [`place`] | `ecg-place` | in-group replica placement policies |
//! | [`sim`] | `ecg-sim` | the discrete-event network simulator |
//! | [`replay`] | `ecg-replay` | sharded, streaming million-request trace replay |
//! | [`core`] | `ecg-core` | the SL and SDSL schemes themselves |
//! | [`faults`] | `ecg-faults` | fault plans, churn generation, degradation reporting |
//! | [`lifecycle`] | `ecg-lifecycle` | continuous re-formation: supervisor, policies, epoch timelines |
//! | [`par`] | `ecg-par` | deterministic fixed-chunk parallel kernels and the worker pool |
//!
//! ## Quickstart
//!
//! ```
//! use edge_cache_groups::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // 1. An edge network: origin + 80 caches on a transit-stub topology.
//! let topo = TransitStubConfig::for_caches(80).generate(&mut rng);
//! let network = EdgeNetwork::place(&topo, 80, OriginPlacement::TransitNode, &mut rng)?;
//!
//! // 2. Form 8 cooperative groups with the SDSL scheme.
//! let outcome = GfCoordinator::new(SchemeConfig::sdsl(8, 1.0))
//!     .form_groups(&network, &mut rng)?;
//!
//! // 3. Evaluate them in simulation on a sporting-event workload.
//! let workload = SportingEventConfig::default()
//!     .caches(80)
//!     .duration_ms(60_000.0)
//!     .generate(&mut rng);
//! let groups = GroupMap::new(80, outcome.groups().to_vec())?;
//! let report = simulate(
//!     &network,
//!     &groups,
//!     &workload.catalog,
//!     &workload.merged_trace(),
//!     SimConfig::default(),
//! )?;
//! println!("average client latency: {:.2} ms", report.average_latency_ms());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub use ecg_cache as cache;
pub use ecg_clustering as clustering;
pub use ecg_coords as coords;
pub use ecg_core as core;
pub use ecg_faults as faults;
pub use ecg_lifecycle as lifecycle;
pub use ecg_obs as obs;
pub use ecg_par as par;
pub use ecg_place as place;
pub use ecg_replay as replay;
pub use ecg_sim as sim;
pub use ecg_topology as topology;
pub use ecg_workload as workload;

/// One-import convenience: the types a typical user touches.
pub mod prelude {
    pub use ecg_cache::{DocumentCache, PolicyKind};
    pub use ecg_clustering::{AssignMode, KmeansVariant, MiniBatchConfig};
    pub use ecg_coords::{ProbeConfig, Prober};
    pub use ecg_core::{
        FormationTimings, GfCoordinator, GroupInit, GroupMaintainer, GroupingOutcome,
        LandmarkSelector, Representation, ScaledFormation, SchemeConfig,
    };
    pub use ecg_faults::{ChurnConfig, ChurnDriver, FaultPlan};
    pub use ecg_lifecycle::{
        FormationSupervisor, FormationTimeline, ReformDecision, ReformPolicy, SupervisorConfig,
    };
    pub use ecg_obs::Obs;
    pub use ecg_place::{AdaptiveConfig, DChoicesConfig, PlacementKind};
    pub use ecg_replay::{
        replay_epochs, replay_sharded, replay_streamed, ReplayConfig, ReplayEpoch, StreamedWorkload,
    };
    pub use ecg_sim::{
        simulate, simulate_with_faults, simulate_with_faults_observed, GroupMap, LatencyModel,
        SimConfig, SimReport,
    };
    pub use ecg_topology::{
        CacheId, EdgeNetwork, OriginPlacement, RttMatrix, RttSource, SyntheticRtt,
        SyntheticRttConfig, TransitStubConfig,
    };
    pub use ecg_workload::{CatalogConfig, DocId, RequestConfig, SportingEventConfig, ZipfSampler};
}
