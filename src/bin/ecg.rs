//! `ecg` — command-line driver for edge cache group formation.
//!
//! ```text
//! ecg gen-network --caches 100 --seed 1 --out net.rtt
//! ecg form       --network net.rtt --scheme sdsl --groups 10 --theta 1.0 --out groups.txt
//! ecg scale      --caches 50000 --scheme sdsl --minibatch true
//! ecg gen-trace  --caches 100 --duration-secs 120 --out run.trace
//! ecg stats      --trace run.trace
//! ecg simulate   --network net.rtt --groups groups.txt --trace run.trace
//! ```
//!
//! * `gen-network` generates a transit-stub topology, places an origin
//!   plus N caches, and writes the RTT matrix (origin at index 0) in
//!   the `rtt` text format.
//! * `form` reads such a matrix, runs SL or SDSL, and writes/prints the
//!   groups (one line of cache ids per group).
//! * `scale` runs the large-N pipeline ([`GfCoordinator::form_groups_scaled`])
//!   over an implicit synthetic RTT oracle — no matrix file, O(n) state —
//!   and prints per-stage timings plus group-size statistics.
//! * `simulate` replays a synthetic sporting-event workload over the
//!   groups and prints the latency/hit-rate report.
//! * `replay` runs the sharded, streaming replay engine
//!   ([`ecg_replay`](edge_cache_groups::replay)) over an implicit
//!   synthetic oracle and contiguous groups — the large-N counterpart
//!   of `simulate`, byte-identical output at any thread count.
//! * `lifecycle` runs the [`FormationSupervisor`] over a generated
//!   churn schedule: windows tick, caches crash/recover/retire, and a
//!   re-formation policy decides hold / repair / partial / full each
//!   window. Prints the decision timeline; `--replay` additionally
//!   replays a workload epoch by epoch under the evolving groupings.
//!
//! Argument parsing is hand-rolled (no CLI dependency); every flag has
//! a default so each subcommand runs bare.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use edge_cache_groups::prelude::*;
use edge_cache_groups::topology::{read_rtt_matrix, write_rtt_matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  ecg gen-network [--caches N] [--seed S] [--origin transit|stub] --out FILE
  ecg form        --network FILE [--scheme sl|sdsl] [--groups K] [--theta T]
                  [--landmarks L] [--plset-multiplier M] [--max-group-size S]
                  [--seed S] [--out FILE]
  ecg scale       [--caches N] [--groups K] [--scheme sl|sdsl] [--theta T]
                  [--landmarks L] [--plset-multiplier M] [--seed S]
                  [--minibatch true|false] [--batch-size B] [--iters I]
                  [--assign auto|blocked|tree]
  ecg gen-trace   [--caches N] [--docs D] [--duration-secs T] [--rate R]
                  [--preset sporting|news|flashcrowd] [--seed S] --out FILE
  ecg stats       --trace FILE
  ecg simulate    --network FILE --groups FILE [--trace FILE] [--docs D]
                  [--duration-secs T] [--rate R] [--capacity-kib C]
                  [--policy utility|lru|lfu|gdsf]
                  [--placement single-holder|adaptive|dchoices] [--seed S]
  ecg replay      [--caches N] [--group-size G] [--docs D]
                  [--duration-secs T] [--rate R] [--capacity-kib C]
                  [--policy utility|lru|lfu|gdsf]
                  [--placement single-holder|adaptive|dchoices]
                  [--seed S] [--threads T] [--verify true|false]
  ecg lifecycle   [--caches N] [--groups K] [--landmarks L]
                  [--duration-secs T] [--step-secs W] [--seed S]
                  [--churn-rate CRASHES_PER_HOUR_PER_CACHE]
                  [--mean-downtime-secs D] [--retirement-fraction F]
                  [--policy static|repair|eager|balanced]
                  [--timeline-out FILE] [--replay true|false]
                  [--docs D] [--rate R] [--threads T]

simulate regenerates the workload from its flags unless --trace is given;
with --trace, --docs must match the catalog the trace was generated for
(use the same --seed/--docs as gen-trace).
replay streams the workload shard by shard (nothing is materialized
globally); --verify additionally runs the monolithic simulator on the
equivalent materialized input and asserts bit-identical reports (small N
only). Stdout is byte-identical at any --threads / ECG_THREADS setting;
wall-clock timings go to stderr.
lifecycle runs the formation supervisor over a generated churn schedule
and prints the decision timeline; --timeline-out writes the full
timeline JSON, --replay additionally replays a workload epoch by epoch
under the evolving groupings. Stdout and the timeline JSON are
byte-identical at any --threads / ECG_THREADS setting.";

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "gen-network" => gen_network(&flags),
        "form" => form(&flags),
        "scale" => scale_cmd(&flags),
        "gen-trace" => gen_trace(&flags),
        "stats" => stats_cmd(&flags),
        "simulate" => simulate_cmd(&flags),
        "replay" => replay_cmd(&flags),
        "lifecycle" => lifecycle_cmd(&flags),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Parses `--key value` pairs into a map.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got {key:?}"));
        };
        let Some(value) = iter.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        if flags.insert(name.to_string(), value.clone()).is_some() {
            return Err(format!("flag --{name} given twice"));
        }
    }
    Ok(flags)
}

fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value for --{name}: {raw:?}")),
    }
}

fn require<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn gen_network(flags: &HashMap<String, String>) -> Result<(), String> {
    let caches: usize = get_parsed(flags, "caches", 100)?;
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let origin = match flags.get("origin").map(String::as_str).unwrap_or("transit") {
        "transit" => OriginPlacement::TransitNode,
        "stub" => OriginPlacement::StubNode,
        other => return Err(format!("--origin must be transit or stub, got {other:?}")),
    };
    let out = require(flags, "out")?;

    let mut rng = StdRng::seed_from_u64(seed);
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, origin, &mut rng).map_err(|e| e.to_string())?;

    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_rtt_matrix(BufWriter::new(file), network.rtt_matrix())
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: origin + {} caches, mean origin RTT {:.1} ms",
        network.cache_count(),
        network.mean_origin_rtt()
    );
    Ok(())
}

fn load_network(path: &str) -> Result<EdgeNetwork, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let matrix = read_rtt_matrix(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    if matrix.len() < 2 {
        return Err(format!("{path}: matrix too small for an edge network"));
    }
    Ok(EdgeNetwork::from_rtt_matrix(matrix))
}

fn form(flags: &HashMap<String, String>) -> Result<(), String> {
    let network = load_network(require(flags, "network")?)?;
    let k: usize = get_parsed(flags, "groups", network.cache_count() / 10)?;
    let theta: f64 = get_parsed(flags, "theta", 1.0)?;
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let landmarks: usize = get_parsed(flags, "landmarks", 25)?;
    let plset: usize = get_parsed(flags, "plset-multiplier", 4)?;

    let mut scheme = match flags.get("scheme").map(String::as_str).unwrap_or("sdsl") {
        "sl" => SchemeConfig::sl(k.max(1)),
        "sdsl" => SchemeConfig::sdsl(k.max(1), theta),
        other => return Err(format!("--scheme must be sl or sdsl, got {other:?}")),
    }
    .landmarks(landmarks)
    .plset_multiplier(plset);
    if let Some(cap) = flags.get("max-group-size") {
        let cap: usize = cap
            .parse()
            .map_err(|_| format!("bad value for --max-group-size: {cap:?}"))?;
        scheme = scheme.max_group_size(cap);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = GfCoordinator::new(scheme)
        .form_groups(&network, &mut rng)
        .map_err(|e| e.to_string())?;

    let rendered = render_groups(outcome.groups());
    match flags.get("out") {
        Some(path) => {
            let mut file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            file.write_all(rendered.as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    let gic = outcome.average_interaction_cost(|a, b| network.cache_to_cache(a, b));
    println!(
        "# {} groups, sizes {:?}, avg interaction cost {:.2} ms, {} probes",
        outcome.groups().len(),
        outcome.groups().iter().map(Vec::len).collect::<Vec<_>>(),
        gic,
        outcome.probes_sent(),
    );
    Ok(())
}

/// The large-N pipeline over an implicit synthetic RTT oracle: no
/// matrix file, O(n) state, derived-seed parallel kernels throughout.
fn scale_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let caches: usize = get_parsed(flags, "caches", 10_000)?;
    let k: usize = get_parsed(flags, "groups", (caches / 100).max(2))?;
    let theta: f64 = get_parsed(flags, "theta", 1.0)?;
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let landmarks: usize = get_parsed(flags, "landmarks", 8)?;
    let plset: usize = get_parsed(flags, "plset-multiplier", 4)?;
    let minibatch: bool = get_parsed(flags, "minibatch", false)?;
    let batch_size: usize = get_parsed(flags, "batch-size", 2_048)?;
    let iters: usize = get_parsed(flags, "iters", 40)?;
    let assign: AssignMode = get_parsed(flags, "assign", AssignMode::Auto)?;
    if batch_size == 0 {
        return Err("--batch-size must be positive".into());
    }

    let mut scheme = match flags.get("scheme").map(String::as_str).unwrap_or("sdsl") {
        "sl" => SchemeConfig::sl(k.max(1)),
        "sdsl" => SchemeConfig::sdsl(k.max(1), theta),
        other => return Err(format!("--scheme must be sl or sdsl, got {other:?}")),
    }
    .landmarks(landmarks)
    .plset_multiplier(plset)
    .kmeans_assign(assign);
    if minibatch {
        scheme = scheme.kmeans_variant(KmeansVariant::MiniBatch(
            MiniBatchConfig::default()
                .batch_size(batch_size)
                .iterations(iters),
        ));
    }

    // Node 0 is the origin; the caches are nodes 1..=caches.
    let net = SyntheticRttConfig::default().generate(caches + 1, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let formed = GfCoordinator::new(scheme)
        .form_groups_scaled(&net, &mut rng)
        .map_err(|e| e.to_string())?;

    let outcome = &formed.outcome;
    let sizes: Vec<usize> = outcome.groups().iter().map(Vec::len).collect();
    let gic = outcome.average_interaction_cost(|a, b| net.rtt_ms(a.index() + 1, b.index() + 1));
    println!(
        "{} caches -> {} groups ({}), sizes min/mean/max {}/{:.1}/{}",
        caches,
        outcome.groups().len(),
        if minibatch {
            format!(
                "mini-batch {batch_size}x{iters}, {} assign",
                assign_name(assign)
            )
        } else {
            format!("full-batch Lloyd, {} assign", assign_name(assign))
        },
        sizes.iter().min().copied().unwrap_or(0),
        caches as f64 / sizes.len().max(1) as f64,
        sizes.iter().max().copied().unwrap_or(0),
    );
    println!(
        "avg interaction cost {:.2} ms, {} probes, {} k-means iterations",
        gic,
        outcome.probes_sent(),
        outcome.kmeans_iterations(),
    );
    let t = formed.timings;
    println!(
        "timings: landmarks {:.0} ms, features {:.0} ms, clustering {:.0} ms \
         (tree build {:.1} ms), total {:.0} ms",
        t.landmarks_ms, t.features_ms, t.clustering_ms, t.tree_build_ms, t.total_ms,
    );
    Ok(())
}

/// Display name of an assignment engine choice.
fn assign_name(mode: AssignMode) -> &'static str {
    match mode {
        AssignMode::Auto => "auto",
        AssignMode::Blocked => "blocked",
        AssignMode::Tree => "tree",
    }
}

/// Builds the workload a set of flags describes (shared by `gen-trace`
/// and `simulate`).
fn build_workload(
    flags: &HashMap<String, String>,
    caches: usize,
) -> Result<
    (
        edge_cache_groups::workload::DocumentCatalog,
        Vec<edge_cache_groups::workload::TraceEvent>,
    ),
    String,
> {
    let docs: usize = get_parsed(flags, "docs", 1_500)?;
    let duration_secs: f64 = get_parsed(flags, "duration-secs", 120.0)?;
    let rate: f64 = get_parsed(flags, "rate", 2.0)?;
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let duration_ms = duration_secs * 1_000.0;
    let mut rng = StdRng::seed_from_u64(seed);
    match flags
        .get("preset")
        .map(String::as_str)
        .unwrap_or("sporting")
    {
        "sporting" => {
            let w = SportingEventConfig::default()
                .caches(caches)
                .documents(docs)
                .duration_ms(duration_ms)
                .rate_per_sec_per_cache(rate)
                .generate(&mut rng);
            Ok((w.catalog.clone(), w.merged_trace()))
        }
        "news" => {
            let w = edge_cache_groups::workload::NewsSiteConfig::default()
                .caches(caches)
                .documents(docs)
                .duration_ms(duration_ms)
                .rate_per_sec_per_cache(rate)
                .generate(&mut rng);
            Ok((w.catalog.clone(), w.merged_trace()))
        }
        "flashcrowd" => {
            let w = edge_cache_groups::workload::RegionalFlashCrowdConfig::default()
                .caches(caches)
                .documents(docs)
                .duration_ms(duration_ms)
                .rate_per_sec_per_cache(rate)
                .generate(&mut rng);
            Ok((w.catalog.clone(), w.merged_trace()))
        }
        other => Err(format!(
            "--preset must be sporting, news, or flashcrowd, got {other:?}"
        )),
    }
}

fn gen_trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let caches: usize = get_parsed(flags, "caches", 100)?;
    let out = require(flags, "out")?;
    let (_, trace) = build_workload(flags, caches)?;
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    edge_cache_groups::workload::write_trace(BufWriter::new(file), &trace)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}: {} events", trace.len());
    Ok(())
}

fn stats_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = require(flags, "trace")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let trace = edge_cache_groups::workload::read_trace(BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    let s = edge_cache_groups::workload::TraceStats::compute(&trace);
    println!("events            {}", s.requests + s.updates);
    println!("requests          {}", s.requests);
    println!("updates           {}", s.updates);
    println!("span              {:.1} s", s.span_ms / 1_000.0);
    println!("active caches     {}", s.active_caches);
    println!("distinct docs     {}", s.distinct_docs);
    println!("busiest cache     {} requests", s.max_cache_load);
    if let Some(imbalance) = s.load_imbalance() {
        println!("load imbalance    {imbalance:.2}x");
    }
    println!("top doc share     {:.1}%", 100.0 * s.top_doc_share);
    println!("top-10 share      {:.1}%", 100.0 * s.top10_share);
    Ok(())
}

fn simulate_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let network = load_network(require(flags, "network")?)?;
    let groups_path = require(flags, "groups")?;
    let text = std::fs::read_to_string(groups_path)
        .map_err(|e| format!("cannot read {groups_path}: {e}"))?;
    let groups = parse_groups(&text).map_err(|e| format!("{groups_path}: {e}"))?;
    let map = GroupMap::new(network.cache_count(), groups).map_err(|e| e.to_string())?;

    let duration_secs: f64 = get_parsed(flags, "duration-secs", 120.0)?;
    let capacity_kib: u64 = get_parsed(flags, "capacity-kib", 512)?;
    let policy = match flags.get("policy").map(String::as_str).unwrap_or("utility") {
        "utility" => PolicyKind::Utility,
        "lru" => PolicyKind::Lru,
        "lfu" => PolicyKind::Lfu,
        "gdsf" => PolicyKind::Gdsf,
        other => return Err(format!("unknown --policy {other:?}")),
    };
    let placement = match flags
        .get("placement")
        .map(String::as_str)
        .unwrap_or("single-holder")
    {
        "single-holder" => PlacementKind::SingleHolder,
        "adaptive" => PlacementKind::adaptive(),
        "dchoices" => PlacementKind::d_choices(),
        other => return Err(format!("unknown --placement {other:?}")),
    };

    let duration_ms = duration_secs * 1_000.0;
    // Workload: regenerate from flags, or replay a persisted trace
    // against the flag-described catalog.
    let (catalog, trace) = {
        let (catalog, generated) = build_workload(flags, network.cache_count())?;
        match flags.get("trace") {
            None => (catalog, generated),
            Some(path) => {
                let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
                let trace = edge_cache_groups::workload::read_trace(BufReader::new(file))
                    .map_err(|e| format!("{path}: {e}"))?;
                (catalog, trace)
            }
        }
    };
    let report = simulate(
        &network,
        &map,
        &catalog,
        &trace,
        SimConfig::default()
            .cache_capacity_bytes(capacity_kib * 1024)
            .policy(policy)
            .placement(placement)
            .warmup_ms(duration_ms / 6.0),
    )
    .map_err(|e| e.to_string())?;

    println!("{report}");
    Ok(())
}

/// The sharded, streaming replay engine over an implicit synthetic RTT
/// oracle and contiguous groups: the large-N counterpart of `simulate`.
/// Nothing global is materialized — each shard regenerates its members'
/// request streams from the master seed — so stdout is byte-identical
/// at any `--threads` / `ECG_THREADS` setting.
fn replay_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    use edge_cache_groups::replay::replay_streamed_observed;
    use edge_cache_groups::workload::generate_updates;
    use rand::Rng;

    let caches: usize = get_parsed(flags, "caches", 200)?;
    let group_size: usize = get_parsed(flags, "group-size", 25)?;
    let docs: usize = get_parsed(flags, "docs", 1_500)?;
    let duration_secs: f64 = get_parsed(flags, "duration-secs", 60.0)?;
    let rate: f64 = get_parsed(flags, "rate", 2.0)?;
    let capacity_kib: u64 = get_parsed(flags, "capacity-kib", 512)?;
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let verify: bool = get_parsed(flags, "verify", false)?;
    if caches == 0 {
        return Err("--caches must be positive".into());
    }
    if group_size == 0 {
        return Err("--group-size must be positive".into());
    }
    let policy = match flags.get("policy").map(String::as_str).unwrap_or("utility") {
        "utility" => PolicyKind::Utility,
        "lru" => PolicyKind::Lru,
        "lfu" => PolicyKind::Lfu,
        "gdsf" => PolicyKind::Gdsf,
        other => return Err(format!("unknown --policy {other:?}")),
    };
    let placement = match flags
        .get("placement")
        .map(String::as_str)
        .unwrap_or("single-holder")
    {
        "single-holder" => PlacementKind::SingleHolder,
        "adaptive" => PlacementKind::adaptive(),
        "dchoices" => PlacementKind::d_choices(),
        other => return Err(format!("unknown --placement {other:?}")),
    };
    let threads: Option<usize> = match flags.get("threads") {
        None => None,
        Some(raw) => {
            let t: usize = raw
                .parse()
                .map_err(|_| format!("bad value for --threads: {raw:?}"))?;
            if t == 0 {
                return Err("--threads must be positive".into());
            }
            Some(t)
        }
    };

    let duration_ms = duration_secs * 1_000.0;
    // Node 0 is the origin; the caches are nodes 1..=caches.
    let net = SyntheticRttConfig::default().generate(caches + 1, seed);
    let groups: Vec<Vec<CacheId>> = (0..caches)
        .collect::<Vec<_>>()
        .chunks(group_size)
        .map(|chunk| chunk.iter().map(|&c| CacheId(c)).collect())
        .collect();
    let map = GroupMap::new(caches, groups).map_err(|e| e.to_string())?;

    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = CatalogConfig::default().documents(docs).generate(&mut rng);
    let updates = generate_updates(&catalog, duration_ms, &mut rng);
    let master: u64 = rng.gen();
    let workload = StreamedWorkload::new(
        RequestConfig::default().rate_per_sec_per_cache(rate),
        master,
        duration_ms,
    )
    .updates(&updates);
    let config = ReplayConfig::default().sim(
        SimConfig::default()
            .cache_capacity_bytes(capacity_kib * 1024)
            .policy(policy)
            .placement(placement)
            .warmup_ms(duration_ms / 6.0),
    );

    if threads.is_some() {
        edge_cache_groups::par::set_max_threads(threads);
    }
    let outcome = replay_streamed_observed(&net, &map, &catalog, &workload, &config, None)
        .map_err(|e| e.to_string());
    if threads.is_some() {
        edge_cache_groups::par::set_max_threads(None);
    }
    let replayed = outcome?;

    println!(
        "{} caches in {} shards (group size <= {group_size}), {} shard events",
        caches, replayed.shards, replayed.shard_events
    );
    println!("{}", replayed.report);
    let t = &replayed.timings;
    eprintln!(
        "timings: plan {:.0} ms, shards {:.0} ms, merge {:.0} ms, total {:.0} ms",
        t.plan_ms,
        t.shards_ms,
        t.merge_ms,
        t.total_ms()
    );

    if verify {
        let full = RttMatrix::from_fn(caches + 1, |a, b| net.rtt_ms(a, b));
        let monolithic = simulate(
            &EdgeNetwork::from_rtt_matrix(full),
            &map,
            &catalog,
            &workload.materialize_trace(&catalog, caches),
            *config.sim_config(),
        )
        .map_err(|e| e.to_string())?;
        if monolithic != replayed.report {
            return Err("sharded replay diverged from monolithic simulate".into());
        }
        println!("verify: sharded report is bit-identical to monolithic simulate");
    }
    Ok(())
}

/// Runs the formation supervisor over a generated churn schedule on a
/// transit-stub network, prints the per-window decision timeline, and
/// (optionally) replays a sporting-event workload epoch by epoch under
/// the groupings the supervisor served. The supervisor itself is
/// serial and the epoch replay merges shards deterministically, so
/// stdout and the `--timeline-out` JSON are byte-identical at any
/// `--threads` / `ECG_THREADS` setting.
fn lifecycle_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let caches: usize = get_parsed(flags, "caches", 60)?;
    let groups: usize = get_parsed(flags, "groups", (caches / 8).max(2))?;
    let landmarks: usize = get_parsed(flags, "landmarks", 8)?;
    let duration_secs: f64 = get_parsed(flags, "duration-secs", 120.0)?;
    let step_secs: f64 = get_parsed(flags, "step-secs", 10.0)?;
    let seed: u64 = get_parsed(flags, "seed", 1)?;
    let churn_rate: f64 = get_parsed(flags, "churn-rate", 12.0)?;
    let mean_downtime_secs: f64 = get_parsed(flags, "mean-downtime-secs", 15.0)?;
    let retirement_fraction: f64 = get_parsed(flags, "retirement-fraction", 0.1)?;
    let do_replay: bool = get_parsed(flags, "replay", false)?;
    if caches == 0 {
        return Err("--caches must be positive".into());
    }
    if !churn_rate.is_finite() || churn_rate < 0.0 {
        return Err("--churn-rate must be finite and non-negative".into());
    }
    if !(0.0..=1.0).contains(&retirement_fraction) {
        return Err("--retirement-fraction must be in [0, 1]".into());
    }
    let policy_name = flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("balanced");
    let policy = ReformPolicy::by_name(policy_name)
        .ok_or_else(|| format!("unknown --policy {policy_name:?}"))?;
    let threads: Option<usize> = match flags.get("threads") {
        None => None,
        Some(raw) => {
            let t: usize = raw
                .parse()
                .map_err(|_| format!("bad value for --threads: {raw:?}"))?;
            if t == 0 {
                return Err("--threads must be positive".into());
            }
            Some(t)
        }
    };

    let duration_ms = duration_secs * 1_000.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = TransitStubConfig::for_caches(caches).generate(&mut rng);
    let network = EdgeNetwork::place(&topo, caches, OriginPlacement::TransitNode, &mut rng)
        .map_err(|e| e.to_string())?;

    // Churn plan and supervisor RNG are derived from --seed so the whole
    // run is reproducible from the command line alone.
    let plan = ChurnConfig::default()
        .crashes_per_hour_per_cache(churn_rate)
        .mean_downtime_ms(mean_downtime_secs * 1_000.0)
        .retirement_fraction(retirement_fraction)
        .generate(
            caches,
            duration_ms,
            &mut StdRng::seed_from_u64(seed ^ 0x9e37),
        );
    let schedule = plan.schedule();

    let supervisor = FormationSupervisor::new(
        SupervisorConfig::new(SchemeConfig::sl(groups).landmarks(landmarks))
            .step_ms(step_secs * 1_000.0)
            .policy(policy),
    );
    if threads.is_some() {
        edge_cache_groups::par::set_max_threads(threads);
    }
    let run_outcome = (|| -> Result<_, String> {
        let timeline = supervisor
            .run(&network, &schedule, duration_ms, &mut rng)
            .map_err(|e| e.to_string())?;

        println!(
            "{caches} caches, K = {groups}, policy {policy_name}: \
             {} windows of {:.0} s over {:.0} s",
            timeline.decisions().len(),
            step_secs,
            duration_secs,
        );
        println!(
            "{} epochs | holds {} repairs {} partial {} full {} | max drift {:.2}",
            timeline.epochs().len(),
            timeline.decision_count(ReformDecision::Hold),
            timeline.decision_count(ReformDecision::Repair),
            timeline.decision_count(ReformDecision::PartialReform),
            timeline.decision_count(ReformDecision::FullReform),
            timeline.max_drift(),
        );
        for d in timeline.decisions() {
            if d.decision == ReformDecision::Hold && d.demoted_from.is_none() {
                continue;
            }
            let demoted = match d.demoted_from {
                Some(from) => format!(" (demoted from {from})"),
                None => String::new(),
            };
            let escalated = if d.escalated { " (escalated)" } else { "" };
            println!(
                "  t={:>5.0}s {}{demoted}{escalated}: drift {:.2}, \
                 {} down, {} retired, {} dead landmarks -> epoch {}",
                d.window_end_ms / 1_000.0,
                d.decision,
                d.signals.drift,
                d.signals.down_caches,
                d.signals.retirements,
                d.signals.dead_landmarks,
                d.epoch,
            );
        }

        if let Some(path) = flags.get("timeline-out") {
            let mut json = timeline.to_json();
            json.push('\n');
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }

        if do_replay {
            let (catalog, trace) = build_workload(flags, caches)?;
            let epochs: Vec<ReplayEpoch> = timeline
                .epoch_spans()
                .map(|(start, map)| ReplayEpoch::new(start, map.clone()))
                .collect();
            let report = replay_epochs(
                &network,
                &epochs,
                &catalog,
                &trace,
                &ReplayConfig::new()
                    .sim(SimConfig::default().warmup_ms(duration_ms / 6.0))
                    .schedule(schedule),
            )
            .map_err(|e| e.to_string())?;
            println!("epoch-spanning replay across {} epochs:", epochs.len());
            println!("{report}");
        }
        Ok(())
    })();
    if threads.is_some() {
        edge_cache_groups::par::set_max_threads(None);
    }
    run_outcome
}

/// Renders groups as one line of space-separated cache ids per group.
fn render_groups(groups: &[Vec<CacheId>]) -> String {
    let mut out = String::new();
    for group in groups {
        let ids: Vec<String> = group.iter().map(|c| c.index().to_string()).collect();
        out.push_str(&ids.join(" "));
        out.push('\n');
    }
    out
}

/// Parses the `render_groups` format (comments with `#`, blank lines
/// ignored).
fn parse_groups(text: &str) -> Result<Vec<Vec<CacheId>>, String> {
    let mut groups = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut group = Vec::new();
        for token in trimmed.split_ascii_whitespace() {
            let id: usize = token
                .parse()
                .map_err(|_| format!("line {}: bad cache id {token:?}", idx + 1))?;
            group.push(CacheId(id));
        }
        groups.push(group);
    }
    if groups.is_empty() {
        return Err("no groups found".into());
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_key_value_pairs() {
        let args: Vec<String> = ["--caches", "50", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags.get("caches").map(String::as_str), Some("50"));
        assert_eq!(get_parsed(&flags, "seed", 0u64).unwrap(), 9);
        assert_eq!(get_parsed(&flags, "missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn flags_reject_malformed_input() {
        let bad = |args: &[&str]| {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_flags(&args).is_err()
        };
        assert!(bad(&["caches", "50"])); // missing --
        assert!(bad(&["--caches"])); // missing value
        assert!(bad(&["--a", "1", "--a", "2"])); // duplicate
    }

    #[test]
    fn groups_round_trip() {
        let groups = vec![
            vec![CacheId(0), CacheId(3)],
            vec![CacheId(1)],
            vec![CacheId(2), CacheId(4), CacheId(5)],
        ];
        let text = render_groups(&groups);
        let back = parse_groups(&text).unwrap();
        assert_eq!(back, groups);
    }

    #[test]
    fn parse_groups_skips_comments_and_rejects_garbage() {
        let ok = parse_groups("# header\n0 1\n\n2\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert!(parse_groups("0 x\n").is_err());
        assert!(parse_groups("# only comments\n").is_err());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let args = vec!["frobnicate".to_string()];
        assert!(run(&args).is_err());
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir();
        let net = dir.join("ecg_cli_test.rtt");
        let grp = dir.join("ecg_cli_test.groups");
        let to_args =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };

        run(&to_args(&[
            "gen-network",
            "--caches",
            "24",
            "--seed",
            "3",
            "--out",
            net.to_str().unwrap(),
        ]))
        .unwrap();
        run(&to_args(&[
            "form",
            "--network",
            net.to_str().unwrap(),
            "--scheme",
            "sdsl",
            "--groups",
            "4",
            "--landmarks",
            "6",
            "--out",
            grp.to_str().unwrap(),
        ]))
        .unwrap();
        run(&to_args(&[
            "simulate",
            "--network",
            net.to_str().unwrap(),
            "--groups",
            grp.to_str().unwrap(),
            "--docs",
            "200",
            "--duration-secs",
            "10",
        ]))
        .unwrap();

        // Trace tooling: generate, inspect, replay.
        let trc = dir.join("ecg_cli_test.trace");
        run(&to_args(&[
            "gen-trace",
            "--caches",
            "24",
            "--docs",
            "200",
            "--duration-secs",
            "10",
            "--out",
            trc.to_str().unwrap(),
        ]))
        .unwrap();
        run(&to_args(&["stats", "--trace", trc.to_str().unwrap()])).unwrap();
        run(&to_args(&[
            "simulate",
            "--network",
            net.to_str().unwrap(),
            "--groups",
            grp.to_str().unwrap(),
            "--docs",
            "200",
            "--duration-secs",
            "10",
            "--trace",
            trc.to_str().unwrap(),
        ]))
        .unwrap();

        std::fs::remove_file(&net).ok();
        std::fs::remove_file(&grp).ok();
        std::fs::remove_file(&trc).ok();
    }

    #[test]
    fn placement_flag_and_flashcrowd_preset() {
        let dir = std::env::temp_dir();
        let net = dir.join("ecg_cli_place.rtt");
        let grp = dir.join("ecg_cli_place.groups");
        let to_args =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };

        run(&to_args(&[
            "gen-network",
            "--caches",
            "12",
            "--seed",
            "5",
            "--out",
            net.to_str().unwrap(),
        ]))
        .unwrap();
        run(&to_args(&[
            "form",
            "--network",
            net.to_str().unwrap(),
            "--groups",
            "3",
            "--landmarks",
            "5",
            "--out",
            grp.to_str().unwrap(),
        ]))
        .unwrap();
        for placement in ["single-holder", "adaptive", "dchoices"] {
            run(&to_args(&[
                "simulate",
                "--network",
                net.to_str().unwrap(),
                "--groups",
                grp.to_str().unwrap(),
                "--preset",
                "flashcrowd",
                "--docs",
                "150",
                "--duration-secs",
                "8",
                "--placement",
                placement,
            ]))
            .unwrap();
        }
        assert!(run(&to_args(&[
            "simulate",
            "--network",
            net.to_str().unwrap(),
            "--groups",
            grp.to_str().unwrap(),
            "--placement",
            "bogus",
        ]))
        .is_err());

        std::fs::remove_file(&net).ok();
        std::fs::remove_file(&grp).ok();
    }

    #[test]
    fn scale_subcommand_runs_both_variants() {
        let to_args =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
        run(&to_args(&[
            "scale",
            "--caches",
            "300",
            "--groups",
            "6",
            "--landmarks",
            "6",
            "--seed",
            "2",
        ]))
        .unwrap();
        run(&to_args(&[
            "scale",
            "--caches",
            "300",
            "--scheme",
            "sl",
            "--groups",
            "5",
            "--landmarks",
            "6",
            "--minibatch",
            "true",
            "--batch-size",
            "64",
            "--iters",
            "10",
        ]))
        .unwrap();
        // Forced tree assignment must run (and match the other engines
        // bit for bit — pinned by the scaled-pipeline suite).
        run(&to_args(&[
            "scale",
            "--caches",
            "300",
            "--groups",
            "6",
            "--landmarks",
            "6",
            "--seed",
            "2",
            "--assign",
            "tree",
        ]))
        .unwrap();
        assert!(run(&to_args(&[
            "scale",
            "--minibatch",
            "true",
            "--batch-size",
            "0"
        ]))
        .is_err());
        assert!(run(&to_args(&["scale", "--scheme", "bogus"])).is_err());
        assert!(run(&to_args(&["scale", "--assign", "kd"])).is_err());
    }

    #[test]
    fn replay_subcommand_verifies_against_monolithic() {
        let to_args =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
        // Small N with --verify: the sharded report must be bit-identical
        // to the monolithic simulator, at an explicit thread count too.
        run(&to_args(&[
            "replay",
            "--caches",
            "18",
            "--group-size",
            "5",
            "--docs",
            "150",
            "--duration-secs",
            "8",
            "--verify",
            "true",
        ]))
        .unwrap();
        run(&to_args(&[
            "replay",
            "--caches",
            "18",
            "--group-size",
            "5",
            "--docs",
            "150",
            "--duration-secs",
            "8",
            "--threads",
            "2",
            "--placement",
            "adaptive",
            "--verify",
            "true",
        ]))
        .unwrap();
        assert!(run(&to_args(&["replay", "--caches", "0"])).is_err());
        assert!(run(&to_args(&["replay", "--group-size", "0"])).is_err());
        assert!(run(&to_args(&["replay", "--threads", "0"])).is_err());
        assert!(run(&to_args(&["replay", "--policy", "bogus"])).is_err());
    }

    #[test]
    fn lifecycle_subcommand_is_thread_count_invariant() {
        let dir = std::env::temp_dir();
        let t1 = dir.join("ecg_cli_lifecycle_t1.json");
        let t2 = dir.join("ecg_cli_lifecycle_t2.json");
        let to_args =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
        // Heavy churn on a small network so the policy actually acts;
        // the timeline JSON must not depend on the worker count.
        let base = |out: &str, threads: &str| {
            to_args(&[
                "lifecycle",
                "--caches",
                "24",
                "--groups",
                "4",
                "--landmarks",
                "5",
                "--duration-secs",
                "60",
                "--step-secs",
                "10",
                "--churn-rate",
                "120",
                "--seed",
                "7",
                "--timeline-out",
                out,
                "--threads",
                threads,
            ])
        };
        run(&base(t1.to_str().unwrap(), "1")).unwrap();
        run(&base(t2.to_str().unwrap(), "2")).unwrap();
        let a = std::fs::read(&t1).unwrap();
        let b = std::fs::read(&t2).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "timeline JSON differs across thread counts");

        // Epoch-spanning replay path over the same run.
        run(&to_args(&[
            "lifecycle",
            "--caches",
            "24",
            "--groups",
            "4",
            "--landmarks",
            "5",
            "--duration-secs",
            "60",
            "--step-secs",
            "10",
            "--churn-rate",
            "120",
            "--seed",
            "7",
            "--docs",
            "150",
            "--replay",
            "true",
        ]))
        .unwrap();

        assert!(run(&to_args(&["lifecycle", "--caches", "0"])).is_err());
        assert!(run(&to_args(&["lifecycle", "--churn-rate", "-1"])).is_err());
        assert!(run(&to_args(&["lifecycle", "--threads", "0"])).is_err());
        assert!(run(&to_args(&["lifecycle", "--policy", "bogus"])).is_err());
        assert!(run(&to_args(&["lifecycle", "--retirement-fraction", "2"])).is_err());

        std::fs::remove_file(&t1).ok();
        std::fs::remove_file(&t2).ok();
    }

    #[test]
    fn news_preset_and_bad_preset() {
        let dir = std::env::temp_dir();
        let trc = dir.join("ecg_cli_news.trace");
        let to_args =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
        run(&to_args(&[
            "gen-trace",
            "--caches",
            "6",
            "--docs",
            "100",
            "--duration-secs",
            "5",
            "--preset",
            "news",
            "--out",
            trc.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run(&to_args(&[
            "gen-trace",
            "--preset",
            "bogus",
            "--out",
            trc.to_str().unwrap(),
        ]))
        .is_err());
        std::fs::remove_file(&trc).ok();
    }
}
